package obs

import (
	"fmt"
	"math"
)

// SeriesCheck asserts the *shape* of a sampled series — flat, monotone,
// bounded, rate-limited — rather than a single end-of-run value. The nomad
// soak's flatness evidence and /healthz's degraded status are both built on
// these. Eval is handed the retained samples oldest first and returns the
// verdict plus a human-readable detail line.
//
// Shared semantics, pinned by tests:
//
//   - Too little data passes vacuously ("insufficient samples" in the
//     detail): a daemon that just booted must not report degraded before
//     its rings have anything to say.
//   - Any non-finite sample (NaN or ±Inf — e.g. a histogram sum that
//     absorbed a NaN observation) fails the check outright with the sample
//     index in the detail. A series that cannot be interpreted must never
//     pass a shape assertion.
type SeriesCheck interface {
	// Kind returns the check's short kind tag ("flat", "monotone",
	// "bounded", "max-rate") for reports.
	Kind() string
	// Eval judges the samples (oldest first).
	Eval(samples []float64) (ok bool, detail string)
}

// CheckResult is one evaluated check, as exposed on /debug/timeseries, in
// obsreport output, and behind /healthz.
type CheckResult struct {
	Name   string `json:"name"`
	Series string `json:"series"`
	Kind   string `json:"kind"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// nonFinite returns the index of the first non-finite sample, or -1.
func nonFinite(samples []float64) int {
	for i, v := range samples {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return i
		}
	}
	return -1
}

// checkFinite is the shared non-finite guard; ok=true means keep going.
func checkFinite(samples []float64) (bool, string) {
	if i := nonFinite(samples); i >= 0 {
		return false, fmt.Sprintf("non-finite sample %v at index %d", samples[i], i)
	}
	return true, ""
}

// Flatness asserts that a series has stopped growing: the median of one
// quarter window must not exceed the median of an earlier quarter window by
// more than the configured slack. Which quarters are compared is the
// caller's domain knowledge — a ramp-then-plateau gauge compares the second
// half's quarters (2 vs 3), a periodic gauge compares windows one full
// cycle apart (see the nomad soak for both worked examples).
type Flatness struct {
	// EarlyQuarter and LateQuarter index into QuarterMedians (0..3).
	EarlyQuarter, LateQuarter int
	// RelSlack scales the early median into allowed growth (0.25 = +25%).
	RelSlack float64
	// AbsSlack is a constant allowance absorbing quantization and noise.
	AbsSlack float64
}

// Kind implements SeriesCheck.
func (f Flatness) Kind() string { return "flat" }

// Eval implements SeriesCheck. Fewer than four samples pass vacuously.
func (f Flatness) Eval(samples []float64) (bool, string) {
	if ok, detail := checkFinite(samples); !ok {
		return false, detail
	}
	if len(samples) < 4 {
		return true, fmt.Sprintf("insufficient samples (%d < 4)", len(samples))
	}
	qs := QuarterMedians(samples)
	early, late := qs[f.EarlyQuarter], qs[f.LateQuarter]
	allowed := early + early*f.RelSlack + f.AbsSlack
	return late <= allowed, fmt.Sprintf("early(q%d)=%g late(q%d)=%g allowed=%g",
		f.EarlyQuarter, early, f.LateQuarter, late, allowed)
}

// MonotoneNonDecreasing asserts the series never goes down — the shape of
// every well-behaved counter sample stream (a decrease means a lost or
// restarted source).
type MonotoneNonDecreasing struct{}

// Kind implements SeriesCheck.
func (MonotoneNonDecreasing) Kind() string { return "monotone" }

// Eval implements SeriesCheck.
func (MonotoneNonDecreasing) Eval(samples []float64) (bool, string) {
	if ok, detail := checkFinite(samples); !ok {
		return false, detail
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			return false, fmt.Sprintf("decreased %g -> %g at index %d", samples[i-1], samples[i], i)
		}
	}
	return true, fmt.Sprintf("nondecreasing over %d samples", len(samples))
}

// Bounded asserts every sample stays within [Min, Max].
type Bounded struct {
	Min, Max float64
}

// Kind implements SeriesCheck.
func (Bounded) Kind() string { return "bounded" }

// Eval implements SeriesCheck.
func (b Bounded) Eval(samples []float64) (bool, string) {
	if ok, detail := checkFinite(samples); !ok {
		return false, detail
	}
	for i, v := range samples {
		if v < b.Min || v > b.Max {
			return false, fmt.Sprintf("sample %g at index %d outside [%g, %g]", v, i, b.Min, b.Max)
		}
	}
	return true, fmt.Sprintf("%d samples within [%g, %g]", len(samples), b.Min, b.Max)
}

// MaxRate asserts the series never climbs by more than PerSample between
// consecutive samples — a growth-rate ceiling (decreases are always fine).
type MaxRate struct {
	PerSample float64
}

// Kind implements SeriesCheck.
func (MaxRate) Kind() string { return "max-rate" }

// Eval implements SeriesCheck.
func (m MaxRate) Eval(samples []float64) (bool, string) {
	if ok, detail := checkFinite(samples); !ok {
		return false, detail
	}
	for i := 1; i < len(samples); i++ {
		if d := samples[i] - samples[i-1]; d > m.PerSample {
			return false, fmt.Sprintf("grew %g at index %d, limit %g per sample", d, i, m.PerSample)
		}
	}
	return true, fmt.Sprintf("max growth within %g per sample", m.PerSample)
}
