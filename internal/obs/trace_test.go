package obs

import (
	"strings"
	"testing"
	"time"
)

// run replays a fixed span workload and returns the recorded IDs.
func runSpans(seed int64) []uint64 {
	tr := NewTracer(seed, 64)
	var ids []uint64
	for _, name := range []string{"fig8", "fig11b", "fig11c"} {
		s := tr.Start(name, "experiment", name)
		c := s.Child("collector", "name", "Oregon-1")
		ids = append(ids, s.ID(), c.ID())
		c.End()
		s.End()
	}
	return ids
}

func TestSpanIDsDeterministic(t *testing.T) {
	a, b := runSpans(20140817), runSpans(20140817)
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("span counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("span %d: id %x != %x (same seed must replay)", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("span %d: zero id", i)
		}
	}
	c := runSpans(7)
	if c[0] == a[0] {
		t.Fatal("different seed produced the same root span ID")
	}
	seen := map[uint64]bool{}
	for _, id := range a {
		if seen[id] {
			t.Fatalf("duplicate span id %x within one trace", id)
		}
		seen[id] = true
	}
}

func TestSpanParentage(t *testing.T) {
	tr := NewTracer(1, 8)
	root := tr.Start("root")
	child := root.Child("child")
	child.End()
	root.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	// End order: child first.
	if spans[0].Name != "child" || spans[0].Parent != root.ID() {
		t.Fatalf("child record = %+v (root id %x)", spans[0], root.ID())
	}
	if spans[1].Parent != 0 {
		t.Fatalf("root must have no parent: %+v", spans[1])
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		tr.Start("s", "i", string(rune('a'+i))).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(spans))
	}
	if spans[0].Labels[1] != "c" || spans[2].Labels[1] != "e" {
		t.Fatalf("ring order wrong: %+v", spans)
	}
}

func TestNilTracerAndSpan(t *testing.T) {
	var tr *Tracer
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	s.End()
	if s.Child("y") != nil {
		t.Fatal("child of nil span must be nil")
	}
	if s.ID() != 0 || tr.Spans() != nil {
		t.Fatal("nil reads must be zero")
	}
	tr.SetNow(nil)
	var b strings.Builder
	tr.WriteJSON(&b)
	if b.String() != "[]" {
		t.Fatalf("nil tracer JSON = %q", b.String())
	}
}

func TestInjectedClockStampsDurations(t *testing.T) {
	tr := NewTracer(1, 8)
	now := time.Duration(0)
	tr.SetNow(func() time.Duration { return now })
	s := tr.Start("timed")
	now = 250 * time.Millisecond
	s.End()
	spans := tr.Spans()
	if spans[0].Dur != 250*time.Millisecond {
		t.Fatalf("dur = %v", spans[0].Dur)
	}
	// Without a clock, durations are zero but IDs are unchanged: the
	// structure of the trace is clock-independent.
	tr2 := NewTracer(1, 8)
	s2 := tr2.Start("timed")
	s2.End()
	if s2.ID() != s.ID() {
		t.Fatal("span ID must not depend on the clock")
	}
	if tr2.Spans()[0].Dur != 0 {
		t.Fatal("clockless span must have zero duration")
	}
}
