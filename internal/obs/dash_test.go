package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampledHandler(t *testing.T) (http.Handler, *Sampler, *Gauge) {
	t.Helper()
	r := NewRegistry()
	g0 := r.Gauge("locind_nomad_engine_heap_bytes", "", "shard", "0")
	g1 := r.Gauge("locind_nomad_engine_heap_bytes", "", "shard", "1")
	s := NewSampler(r, 32)
	s.Check("heap-bounded", `locind_nomad_engine_heap_bytes{shard="0"}`, Bounded{Min: 0, Max: 1000})
	for i := 0; i < 8; i++ {
		g0.Set(int64(100 + i))
		g1.Set(int64(200 + i))
		s.Tick()
	}
	return NewHandler(HandlerOpts{Reg: r, Sampler: s}), s, g0
}

func dashGet(t *testing.T, h http.Handler, path string) (*http.Response, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	res := rec.Result()
	body, _ := io.ReadAll(res.Body)
	return res, string(body)
}

func TestTimeseriesEndpoint(t *testing.T) {
	h, _, _ := sampledHandler(t)
	res, body := dashGet(t, h, "/debug/timeseries")
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var d Dump
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("body is not a Dump: %v", err)
	}
	if len(d.Series) != 2 || d.Ticks != 8 || len(d.Checks) != 1 {
		t.Fatalf("dump = %d series, %d ticks, %d checks", len(d.Series), d.Ticks, len(d.Checks))
	}
}

func TestTimeseriesWithoutSampler404s(t *testing.T) {
	h := NewHandler(HandlerOpts{Reg: NewRegistry()})
	for _, path := range []string{"/debug/timeseries", "/debug/dash"} {
		res, body := dashGet(t, h, path)
		if res.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, res.StatusCode)
		}
		if !strings.Contains(body, "sampling disabled") {
			t.Fatalf("%s body = %q, want explanatory 404", path, body)
		}
	}
	// /healthz still answers ok with no sampler attached.
	res, body := dashGet(t, h, "/healthz")
	if res.StatusCode != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", res.StatusCode, body)
	}
}

func TestDashRendersSelfContainedHTML(t *testing.T) {
	h, _, _ := sampledHandler(t)
	res, body := dashGet(t, h, "/debug/dash")
	if res.StatusCode != 200 {
		t.Fatalf("status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{"<!DOCTYPE html>", "<svg", "polyline", "locind_nomad_engine_heap_bytes"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dash missing %q", want)
		}
	}
	// Self-contained: no external fetches of any kind, and no scripts.
	for _, banned := range []string{"http://", "https://", "<script", "src=", "@import"} {
		if strings.Contains(body, banned) {
			t.Fatalf("dash must be self-contained; found %q", banned)
		}
	}
}

func TestDashGroupsByLabel(t *testing.T) {
	h, _, _ := sampledHandler(t)
	_, body := dashGet(t, h, "/debug/dash?by=shard")
	if !strings.Contains(body, "<h2>shard=0</h2>") || !strings.Contains(body, "<h2>shard=1</h2>") {
		t.Fatalf("per-shard sections missing:\n%s", body)
	}
	// Default view groups by family instead.
	_, body = dashGet(t, h, "/debug/dash")
	if !strings.Contains(body, "<h2>locind_nomad_engine_heap_bytes</h2>") {
		t.Fatal("family section missing in default view")
	}
	if strings.Contains(body, "<h2>shard=0</h2>") {
		t.Fatal("default view must not group by shard")
	}
}

func TestHealthzDegradesOnFailingCheck(t *testing.T) {
	h, s, g0 := sampledHandler(t)
	res, body := dashGet(t, h, "/healthz")
	if res.StatusCode != 200 || body != "ok\n" {
		t.Fatalf("healthy healthz = %d %q", res.StatusCode, body)
	}
	g0.Set(5000) // outside Bounded{0,1000}
	s.Tick()
	res, body = dashGet(t, h, "/healthz")
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz status = %d, want 503", res.StatusCode)
	}
	if !strings.HasPrefix(body, "degraded\n") || !strings.Contains(body, "heap-bounded") {
		t.Fatalf("degraded body = %q", body)
	}
}

func TestWriteDashNilSampler(t *testing.T) {
	var b strings.Builder
	WriteDash(&b, nil, "")
	if !strings.Contains(b.String(), "sampler disabled") {
		t.Fatalf("nil-sampler dash = %q", b.String())
	}
}
