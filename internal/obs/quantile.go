package obs

import "math"

// quantileFromCum estimates quantile q from a histogram's cumulative bucket
// counts (cum[i] = observations <= bounds[i]; observations above the last
// bound are total - cum[last]). This is the Prometheus histogram_quantile
// estimator: find the bucket holding the q-th observation and interpolate
// linearly inside it, treating observations as uniformly spread across the
// bucket. The first bucket interpolates from zero (bounds are latencies and
// sizes here — nonnegative); the implicit +Inf bucket cannot be
// interpolated and clamps to the highest finite bound.
//
// Pure arithmetic over caller-owned slices: no allocation, so the sampler's
// zero-alloc snapshot path can call it every tick.
func quantileFromCum(bounds []float64, cum []int64, total int64, q float64) float64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	for i, ub := range bounds {
		c := float64(cum[i])
		if c >= rank {
			lo, prev := 0.0, float64(0)
			if i > 0 {
				lo, prev = bounds[i-1], float64(cum[i-1])
			}
			width := c - prev
			if width <= 0 {
				return ub
			}
			return lo + (ub-lo)*((rank-prev)/width)
		}
	}
	// rank falls in the implicit +Inf bucket: clamp.
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-th quantile (0..1) of the observed distribution
// by linear interpolation within the histogram's buckets — the same
// estimator Prometheus's histogram_quantile applies server-side, computed
// in-process. Returns 0 with no observations or on a nil receiver; NaN q
// returns NaN. Accuracy is bounded by bucket resolution: the estimate is
// exact only when observations are uniform within each bucket, so tests
// assert against known distributions with tolerance, not equality.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	if math.IsNaN(q) {
		return math.NaN()
	}
	cum := make([]int64, len(h.bounds))
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return quantileFromCum(h.bounds, cum, h.Count(), q)
}
