package obs

import (
	"math"
	"testing"
)

func TestSeriesPushAndValues(t *testing.T) {
	s := newSeries("x", nil, "x", 4)
	if s.Len() != 0 {
		t.Fatalf("fresh series Len = %d, want 0", s.Len())
	}
	for i := 1; i <= 3; i++ {
		s.push(float64(i))
	}
	got := s.Values(nil)
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Values = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values = %v, want %v", got, want)
		}
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	s := newSeries("x", nil, "x", 4)
	for i := 1; i <= 10; i++ {
		s.push(float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len after wrap = %d, want 4", s.Len())
	}
	got := s.Values(nil)
	want := []float64{7, 8, 9, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values after wrap = %v, want %v (oldest first)", got, want)
		}
	}
	// Values must append onto dst, not replace it.
	got = s.Values([]float64{-1})
	if len(got) != 5 || got[0] != -1 || got[1] != 7 {
		t.Fatalf("Values with prefix = %v", got)
	}
}

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	if s.Len() != 0 {
		t.Fatal("nil series Len != 0")
	}
	if got := s.Values([]float64{1}); len(got) != 1 {
		t.Fatalf("nil series Values = %v", got)
	}
}

func TestSeriesKeyAndLabels(t *testing.T) {
	pairs := []labelPair{{"replica", "1"}, {"shard", "0"}}
	s := newSeries("m", pairs, `m{replica="1",shard="0"}`, 4)
	if s.Key() != `m{replica="1",shard="0"}` {
		t.Fatalf("Key = %q", s.Key())
	}
	if s.Name() != "m" {
		t.Fatalf("Name = %q", s.Name())
	}
	if s.Label("shard") != "0" || s.Label("replica") != "1" || s.Label("zone") != "" {
		t.Fatal("Label lookup wrong")
	}
}

// TestQuarterMediansMatchesOldSoakWindows pins the window cuts against the
// nomad soak's original hand-rolled quartile logic (q = n/4; windows
// [0:q+1], [q:2q+1], [2q:3q+1], [n-q-1:n]; upper median).
func TestQuarterMediansMatchesOldSoakWindows(t *testing.T) {
	samples := []float64{5, 1, 9, 3, 8, 2, 7, 4, 6, 10, 12, 11}
	n := len(samples)
	q := n / 4
	oldMedian := func(window []float64) float64 {
		vs := append([]float64(nil), window...)
		for i := 1; i < len(vs); i++ { // insertion sort, to stay independent of median()
			for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
				vs[j], vs[j-1] = vs[j-1], vs[j]
			}
		}
		return vs[len(vs)/2]
	}
	want := [4]float64{
		oldMedian(samples[:q+1]),
		oldMedian(samples[q : 2*q+1]),
		oldMedian(samples[2*q : 3*q+1]),
		oldMedian(samples[n-q-1:]),
	}
	if got := QuarterMedians(samples); got != want {
		t.Fatalf("QuarterMedians = %v, want %v", got, want)
	}
}

func TestQuarterMediansShortSeries(t *testing.T) {
	if got := QuarterMedians(nil); got != [4]float64{} {
		t.Fatalf("QuarterMedians(nil) = %v, want zeros", got)
	}
	// n < 4 ⇒ q = 0: every window is a prefix/suffix around the same data.
	got := QuarterMedians([]float64{7})
	if got != [4]float64{7, 7, 7, 7} {
		t.Fatalf("QuarterMedians([7]) = %v", got)
	}
	got = QuarterMedians([]float64{3, 9})
	for i, v := range got {
		if math.IsNaN(v) {
			t.Fatalf("quarter %d is NaN for 2-sample input", i)
		}
	}
}

func TestQuarterMediansAllEqual(t *testing.T) {
	samples := make([]float64, 40)
	for i := range samples {
		samples[i] = 42
	}
	if got := QuarterMedians(samples); got != [4]float64{42, 42, 42, 42} {
		t.Fatalf("QuarterMedians(const) = %v", got)
	}
}
