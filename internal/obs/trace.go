package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"
)

// Tracer records spans with deterministic IDs. A span ID is the FNV-1a
// hash of (tracer seed, span name, labels, per-tracer sequence number) —
// no randomness, no clock — so two runs of the same workload under the
// same seed produce identical span IDs, and a trace from a chaos replay
// can be diffed line-for-line against the original. The determinism
// analyzer stays green because nothing here reads the wall clock: span
// durations come from an injected monotonic clock (SetNow), and without
// one they are zero — structure-only traces, still fully replayable.
//
// The tracer keeps the most recent Cap spans in a ring; recording is
// mutex-guarded (tracing is per-request/per-experiment, not per-lookup,
// so it is never on a zero-allocation hot path).
type Tracer struct {
	mu   sync.Mutex
	seed uint64
	seq  uint64
	cap  int
	now  func() time.Duration
	ring []SpanRecord
	next int // ring write cursor
	full bool
}

// SpanRecord is one finished (or still-open) span.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Trace  uint64        `json:"trace,omitempty"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Labels []string      `json:"labels,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Open   bool          `json:"open,omitempty"`
}

// Span is a live span handle. End is a no-op on a nil receiver, so
// disabled tracing (nil *Tracer) costs one nil check per site.
type Span struct {
	t      *Tracer
	id     uint64
	trace  uint64
	name   string
	labels []string
	parent uint64
	start  time.Duration
	ended  bool // guarded by t.mu; End commits exactly once
}

// TraceContext is the compact cross-process span context: enough identity
// to parent a server-side span onto the client span that caused it. It is
// carried on the wire (gns request framing, nomad upload headers, vantage
// frames) as the Encode form, so spans recorded by different processes
// assemble into one causal tree. Like span IDs, both fields are
// deterministic under a fixed seed; they identify causality and must never
// feed seeds or ordering decisions (the seedflow/determinism analyzers
// police this).
type TraceContext struct {
	TraceID uint64 `json:"trace"`
	SpanID  uint64 `json:"span"`
}

// Valid reports whether tc carries a usable context (both IDs non-zero).
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 && tc.SpanID != 0 }

// Encode renders tc in the wire form "<trace-id>-<span-id>", two
// 16-hex-digit fields. An invalid context encodes to "" so omitempty JSON
// fields and absent headers fall out naturally.
func (tc TraceContext) Encode() string {
	if !tc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x-%016x", tc.TraceID, tc.SpanID)
}

// ParseTraceContext decodes the Encode form. Anything malformed — wrong
// length, bad hex, zero IDs — returns ok=false; propagation is best-effort
// and a mangled context must never fail a request.
func ParseTraceContext(s string) (TraceContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return TraceContext{}, false
	}
	var tc TraceContext
	if _, err := fmt.Sscanf(s, "%016x-%016x", &tc.TraceID, &tc.SpanID); err != nil {
		return TraceContext{}, false
	}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

// NewTracer builds a tracer whose span IDs derive from seed. capacity
// bounds the retained ring (values below 1 default to 4096).
func NewTracer(seed int64, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 4096
	}
	return &Tracer{seed: uint64(seed), cap: capacity, ring: make([]SpanRecord, 0, capacity)}
}

// SetNow installs a monotonic clock used for span start/duration stamps.
// Daemons pass a closure over the wall clock; simulations either leave it
// unset (durations zero) or pass simulated time. nil clears the clock.
func (t *Tracer) SetNow(fn func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = fn
	t.mu.Unlock()
}

// spanID derives the deterministic ID for the seq-th span named name.
func (t *Tracer) spanID(name string, labels []string, seq uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(t.seed >> (8 * i))
		buf[8+i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])       //nolint:errcheck // hash.Hash.Write never fails
	h.Write([]byte(name)) //nolint:errcheck
	for _, l := range labels {
		h.Write([]byte{0}) //nolint:errcheck
		h.Write([]byte(l)) //nolint:errcheck
	}
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is "no parent"
	}
	return id
}

// Start opens a root span: the start of a new trace, whose trace ID is the
// span's own ID. Nil tracer → nil span, every operation on which is a
// no-op.
func (t *Tracer) Start(name string, labels ...string) *Span {
	return t.start(name, 0, 0, labels)
}

// StartRemote opens a span that continues a trace begun in another process
// (or another tracer): it joins tc's trace and parents onto tc's span, so
// a server-side span nests under the client span whose request it is
// handling. An invalid tc degrades to Start — a mangled or absent context
// yields a fresh root rather than an error.
func (t *Tracer) StartRemote(tc TraceContext, name string, labels ...string) *Span {
	if !tc.Valid() {
		return t.Start(name, labels...)
	}
	return t.start(name, tc.SpanID, tc.TraceID, labels)
}

func (t *Tracer) start(name string, parent, trace uint64, labels []string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	seq := t.seq
	t.seq++
	var start time.Duration
	if t.now != nil {
		start = t.now()
	}
	t.mu.Unlock()
	id := t.spanID(name, labels, seq)
	if trace == 0 {
		trace = id // a root span begins its own trace
	}
	return &Span{
		t: t, id: id, trace: trace, name: name,
		labels: labels, parent: parent, start: start,
	}
}

// Child opens a span parented on s, in the same trace. Nil-safe: a child
// of a nil span is nil.
func (s *Span) Child(name string, labels ...string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id, s.trace, labels)
}

// ID returns the deterministic span ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the propagation context for s: the handle a client puts
// on the wire so the server's spans parent onto s. Zero for a nil span, so
// disabled tracing encodes to "" and nothing is propagated.
func (s *Span) Context() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	return TraceContext{TraceID: s.trace, SpanID: s.id}
}

// End closes the span and commits it to the tracer's ring. Exactly once:
// a second End on the same span is a no-op, so a defensive double-close
// (defer plus explicit) cannot duplicate the record or evict a live one.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID: s.id, Trace: s.trace, Parent: s.parent, Name: s.name, Labels: s.labels, Start: s.start,
	}
	if t.now != nil {
		rec.Dur = t.now() - s.start
	}
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.full = true
	}
	t.next = (t.next + 1) % t.cap
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring...)
	}
	out := make([]SpanRecord, 0, t.cap)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSON renders the retained spans as a JSON array into b — the
// /debug/traces payload.
func (t *Tracer) WriteJSON(b *strings.Builder) {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc, err := json.Marshal(spans)
	if err != nil {
		// SpanRecord has no unmarshalable fields; this is unreachable, but a
		// truncated debug payload beats a panic in an introspection handler.
		fmt.Fprintf(b, `{"error":%q}`, err.Error())
		return
	}
	b.Write(enc) //nolint:errcheck // strings.Builder cannot fail
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWith returns ctx carrying s as the active span, the in-process
// leg of propagation: client helpers read it back with FromContext and put
// s.Context() on the wire. A nil span returns ctx unchanged.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the active span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
