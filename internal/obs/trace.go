package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"
)

// Tracer records spans with deterministic IDs. A span ID is the FNV-1a
// hash of (tracer seed, span name, labels, per-tracer sequence number) —
// no randomness, no clock — so two runs of the same workload under the
// same seed produce identical span IDs, and a trace from a chaos replay
// can be diffed line-for-line against the original. The determinism
// analyzer stays green because nothing here reads the wall clock: span
// durations come from an injected monotonic clock (SetNow), and without
// one they are zero — structure-only traces, still fully replayable.
//
// The tracer keeps the most recent Cap spans in a ring; recording is
// mutex-guarded (tracing is per-request/per-experiment, not per-lookup,
// so it is never on a zero-allocation hot path).
type Tracer struct {
	mu   sync.Mutex
	seed uint64
	seq  uint64
	cap  int
	now  func() time.Duration
	ring []SpanRecord
	next int // ring write cursor
	full bool
}

// SpanRecord is one finished (or still-open) span.
type SpanRecord struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Name   string        `json:"name"`
	Labels []string      `json:"labels,omitempty"`
	Start  time.Duration `json:"start_ns"`
	Dur    time.Duration `json:"dur_ns"`
	Open   bool          `json:"open,omitempty"`
}

// Span is a live span handle. End is a no-op on a nil receiver, so
// disabled tracing (nil *Tracer) costs one nil check per site.
type Span struct {
	t      *Tracer
	id     uint64
	name   string
	labels []string
	parent uint64
	start  time.Duration
}

// NewTracer builds a tracer whose span IDs derive from seed. capacity
// bounds the retained ring (values below 1 default to 4096).
func NewTracer(seed int64, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 4096
	}
	return &Tracer{seed: uint64(seed), cap: capacity, ring: make([]SpanRecord, 0, capacity)}
}

// SetNow installs a monotonic clock used for span start/duration stamps.
// Daemons pass a closure over the wall clock; simulations either leave it
// unset (durations zero) or pass simulated time. nil clears the clock.
func (t *Tracer) SetNow(fn func() time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.now = fn
	t.mu.Unlock()
}

// spanID derives the deterministic ID for the seq-th span named name.
func (t *Tracer) spanID(name string, labels []string, seq uint64) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(t.seed >> (8 * i))
		buf[8+i] = byte(seq >> (8 * i))
	}
	h.Write(buf[:])       //nolint:errcheck // hash.Hash.Write never fails
	h.Write([]byte(name)) //nolint:errcheck
	for _, l := range labels {
		h.Write([]byte{0}) //nolint:errcheck
		h.Write([]byte(l)) //nolint:errcheck
	}
	id := h.Sum64()
	if id == 0 {
		id = 1 // 0 is "no parent"
	}
	return id
}

// Start opens a root span. Nil tracer → nil span, every operation on
// which is a no-op.
func (t *Tracer) Start(name string, labels ...string) *Span {
	return t.start(name, 0, labels)
}

func (t *Tracer) start(name string, parent uint64, labels []string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	seq := t.seq
	t.seq++
	var start time.Duration
	if t.now != nil {
		start = t.now()
	}
	t.mu.Unlock()
	return &Span{
		t: t, id: t.spanID(name, labels, seq), name: name,
		labels: labels, parent: parent, start: start,
	}
}

// Child opens a span parented on s. Nil-safe: a child of a nil span is nil.
func (s *Span) Child(name string, labels ...string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id, labels)
}

// ID returns the deterministic span ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End closes the span and commits it to the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name, Labels: s.labels, Start: s.start,
	}
	if t.now != nil {
		rec.Dur = t.now() - s.start
	}
	if len(t.ring) < t.cap {
		t.ring = append(t.ring, rec)
	} else {
		t.ring[t.next] = rec
		t.full = true
	}
	t.next = (t.next + 1) % t.cap
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring...)
	}
	out := make([]SpanRecord, 0, t.cap)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// WriteJSON renders the retained spans as a JSON array into b — the
// /debug/traces payload.
func (t *Tracer) WriteJSON(b *strings.Builder) {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc, err := json.Marshal(spans)
	if err != nil {
		// SpanRecord has no unmarshalable fields; this is unreachable, but a
		// truncated debug payload beats a panic in an introspection handler.
		fmt.Fprintf(b, `{"error":%q}`, err.Error())
		return
	}
	b.Write(enc) //nolint:errcheck // strings.Builder cannot fail
}
