package obs

import "sort"

// Series is one sampled time series: a fixed-capacity ring buffer of
// float64 samples filled by a Sampler, one sample per tick. Once the ring
// is full the oldest sample is overwritten, so a Series is constant memory
// no matter how long the run — long soaks evaluate their checks over the
// trailing window the ring retains.
//
// A Series is created and pushed by its Sampler (which serializes access
// under its own mutex); readers go through Sampler.Values / Sampler.Dump,
// never concurrently with a tick.
type Series struct {
	name  string
	pairs []labelPair
	key   string // name{labels} — the exposition identity

	buf  []float64
	next int
	full bool
}

// newSeries builds a ring of the given capacity for one registry series.
func newSeries(name string, pairs []labelPair, key string, capacity int) *Series {
	return &Series{name: name, pairs: pairs, key: key, buf: make([]float64, 0, capacity)}
}

// Key returns the series' exposition identity: name{labels} (braces only
// when labels are present), e.g. `locind_nomad_engine_queue_entries` or
// `locind_nomad_engine_queue_entries{shard="3"}`.
func (s *Series) Key() string { return s.key }

// Name returns the metric family name.
func (s *Series) Name() string { return s.name }

// Label returns the value of label k, or "" when unset.
func (s *Series) Label(k string) string {
	for _, p := range s.pairs {
		if p.K == k {
			return p.V
		}
	}
	return ""
}

// push appends one sample, overwriting the oldest once the ring is full.
// This is the sampler's per-tick hot path and must stay allocation-free:
// the backing array is sized once at construction and only indexed here.
func (s *Series) push(v float64) {
	if !s.full && len(s.buf) < cap(s.buf) {
		s.buf = s.buf[:len(s.buf)+1]
	}
	s.buf[s.next] = v
	s.next++
	if s.next == cap(s.buf) {
		s.next = 0
		s.full = true
	}
}

// Len returns how many samples the ring currently retains.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

// Values appends the retained samples, oldest first, onto dst and returns
// the extended slice (pass nil for a fresh one).
func (s *Series) Values(dst []float64) []float64 {
	if s == nil {
		return dst
	}
	if !s.full {
		return append(dst, s.buf...)
	}
	dst = append(dst, s.buf[s.next:]...)
	return append(dst, s.buf[:s.next]...)
}

// QuarterMedians splits samples into the four overlapping quarter windows
// the soak flatness checks compare and returns each window's median. The
// window cuts ([0:q+1], [q:2q+1], [2q:3q+1], [n-q-1:n] for q = n/4)
// reproduce the nomad soak's original hand-rolled quartile logic exactly,
// so verdicts migrated onto SeriesCheck match the old code sample for
// sample (pinned by a regression test). Fewer than four samples degrade
// gracefully: the windows overlap and medians repeat. Empty input returns
// zeros.
func QuarterMedians(samples []float64) (qs [4]float64) {
	n := len(samples)
	if n == 0 {
		return qs
	}
	q := n / 4
	qs[0] = median(samples[:min(q+1, n)])
	qs[1] = median(samples[q:min(2*q+1, n)])
	qs[2] = median(samples[2*q : min(3*q+1, n)])
	qs[3] = median(samples[n-q-1:])
	return qs
}

// median returns the upper median (index len/2 of the sorted window) — the
// same estimator the original soak code used.
func median(window []float64) float64 {
	vs := append([]float64(nil), window...)
	sort.Float64s(vs)
	return vs[len(vs)/2]
}
