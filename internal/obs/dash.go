package obs

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strings"
)

// WriteDash renders the /debug/dash page: a fully self-contained HTML
// dashboard — inline CSS, inline SVG sparklines, zero scripts, zero
// external fetches — so it works from a firewalled soak box or a saved
// .html file alike. Liveness comes from a plain meta-refresh.
//
// by selects the grouping label: ""/absent groups rows by metric family,
// while ?by=shard (or replica, zone, …) makes one section per label value
// — the per-shard view of a nomad soak or the per-replica view of a gns
// cluster. Series lacking the label collect under an "(unlabeled)" section.
func WriteDash(b *strings.Builder, s *Sampler, by string) {
	d := s.Dump()
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<meta http-equiv=\"refresh\" content=\"2\">\n")
	b.WriteString("<title>locind dash</title>\n<style>\n")
	b.WriteString(`body{font:13px/1.4 monospace;background:#111;color:#ddd;margin:1.5em}
h1{font-size:1.2em}h2{font-size:1em;color:#8cf;border-bottom:1px solid #333;padding-bottom:.2em}
table{border-collapse:collapse}td{padding:.15em .8em .15em 0;vertical-align:middle}
.key{color:#aaa}.val{color:#fff;text-align:right}.ok{color:#6d6}.fail{color:#f66}
svg{display:block}a{color:#8cf}
`)
	b.WriteString("</style></head><body>\n<h1>locind time-series</h1>\n")
	if d == nil {
		b.WriteString("<p>sampler disabled</p>\n</body></html>\n")
		return
	}
	fmt.Fprintf(b, "<p>ticks: %d · series: %d · group by: ", d.Ticks, len(d.Series))
	writeByLinks(b, d, by)
	b.WriteString(" · <a href=\"/debug/timeseries\">json</a></p>\n")

	if len(d.Checks) > 0 {
		b.WriteString("<h2>checks</h2>\n<table>\n")
		for _, c := range d.Checks {
			cls, verdict := "ok", "ok"
			if !c.OK {
				cls, verdict = "fail", "FAIL"
			}
			fmt.Fprintf(b, "<tr><td class=\"%s\">%s</td><td>%s</td><td class=\"key\">%s · %s</td></tr>\n",
				cls, verdict, html.EscapeString(c.Name), html.EscapeString(c.Series), html.EscapeString(c.Detail))
		}
		b.WriteString("</table>\n")
	}

	for _, sec := range groupSeries(d, by) {
		fmt.Fprintf(b, "<h2>%s</h2>\n<table>\n", html.EscapeString(sec.title))
		for _, ds := range sec.series {
			vals := make([]float64, len(ds.Samples))
			for i, v := range ds.Samples {
				vals[i] = float64(v)
			}
			last, _, _ := seriesStats(vals)
			fmt.Fprintf(b, "<tr><td class=\"key\">%s</td><td>", html.EscapeString(ds.Key))
			writeSparkSVG(b, vals)
			fmt.Fprintf(b, "</td><td class=\"val\">%s</td></tr>\n", fmtSample(last))
		}
		b.WriteString("</table>\n")
	}
	b.WriteString("</body></html>\n")
}

// section is one dashboard grouping: a heading plus its series rows.
type section struct {
	title  string
	series []DumpSeries
}

// groupSeries partitions the dump's series into dashboard sections — by
// metric family when by is empty, by label value otherwise — preserving
// first-seen order inside each section and sorting section titles.
func groupSeries(d *Dump, by string) []section {
	order := []string{}
	bykey := map[string]*section{}
	add := func(title string, ds DumpSeries) {
		sec, ok := bykey[title]
		if !ok {
			sec = &section{title: title}
			bykey[title] = sec
			order = append(order, title)
		}
		sec.series = append(sec.series, ds)
	}
	for _, ds := range d.Series {
		if by == "" {
			add(ds.Name, ds)
			continue
		}
		if v, ok := ds.Labels[by]; ok {
			add(by+"="+v, ds)
		} else {
			add("(unlabeled)", ds)
		}
	}
	sort.Strings(order)
	out := make([]section, 0, len(order))
	for _, title := range order {
		out = append(out, *bykey[title])
	}
	return out
}

// writeByLinks renders the group-by chooser: every label key present in
// the dump becomes a ?by= link, with the active choice highlighted.
func writeByLinks(b *strings.Builder, d *Dump, active string) {
	keys := map[string]bool{}
	for _, ds := range d.Series {
		for k := range ds.Labels {
			keys[k] = true
		}
	}
	names := make([]string, 0, len(keys))
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	writeByLink(b, "", "family", active)
	for _, k := range names {
		b.WriteString(" ")
		writeByLink(b, k, k, active)
	}
}

func writeByLink(b *strings.Builder, key, text, active string) {
	if key == active {
		fmt.Fprintf(b, "<b>%s</b>", html.EscapeString(text))
		return
	}
	href := "/debug/dash"
	if key != "" {
		href += "?by=" + key
	}
	fmt.Fprintf(b, "<a href=\"%s\">%s</a>", href, html.EscapeString(text))
}

// writeSparkSVG renders one series as an inline SVG sparkline: a polyline
// over min-max normalized samples (downsampled to the pixel budget), split
// into segments at non-finite gaps so holes stay visible.
func writeSparkSVG(b *strings.Builder, vals []float64) {
	const w, h, pad = 240, 36, 2
	fmt.Fprintf(b, "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">", w, h, w, h)
	if len(vals) > w/2 {
		vals = downsample(vals, w/2)
	}
	_, lo, hi := seriesStats(vals)
	if len(vals) > 0 && !math.IsNaN(lo) {
		span := hi - lo
		if span <= 0 {
			span, lo = 1, lo-0.5 // flat series draws a midline
		}
		step := float64(w-2*pad) / float64(max(len(vals)-1, 1))
		open := false
		for i, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if open {
					b.WriteString("\"/>")
					open = false
				}
				continue
			}
			if !open {
				b.WriteString("<polyline fill=\"none\" stroke=\"#6cf\" stroke-width=\"1.2\" points=\"")
				open = true
			}
			x := pad + float64(i)*step
			y := float64(h-pad) - (v-lo)/span*float64(h-2*pad)
			fmt.Fprintf(b, "%.1f,%.1f ", x, y)
		}
		if open {
			b.WriteString("\"/>")
		}
	}
	b.WriteString("</svg>")
}
