package obs

import (
	"context"
	"testing"
	"time"
)

func TestSpanEndTwiceCommitsOnce(t *testing.T) {
	tr := NewTracer(7, 8)
	s := tr.Start("once")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Fatalf("double End committed %d records, want 1", got)
	}
}

func TestSpanEndTwiceDoesNotEvictAtCapacity(t *testing.T) {
	// The defensive defer-plus-explicit close pattern must not advance the
	// ring cursor over a live record when the ring is already full.
	tr := NewTracer(7, 2)
	first := tr.Start("first")
	first.End()
	tr.Start("second").End() // ring now at capacity: [first, second]
	first.End()              // must be a no-op, not an eviction of "first"
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "first" || spans[1].Name != "second" {
		t.Fatalf("double End perturbed the ring: %+v", spans)
	}
}

func TestTracerEvictionOrderIsOldestFirst(t *testing.T) {
	tr := NewTracer(7, 3)
	names := []string{"a", "b", "c", "d", "e"}
	for _, n := range names {
		tr.Start(n).End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("kept %d spans, want 3", len(spans))
	}
	for i, want := range []string{"c", "d", "e"} {
		if spans[i].Name != want {
			t.Fatalf("eviction order wrong at %d: got %q want %q (%+v)", i, spans[i].Name, want, spans)
		}
	}
}

func TestTraceContextEncodeParseRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: 0xdeadbeefcafef00d, SpanID: 0x0123456789abcdef}
	wire := tc.Encode()
	if wire != "deadbeefcafef00d-0123456789abcdef" {
		t.Fatalf("Encode = %q", wire)
	}
	got, ok := ParseTraceContext(wire)
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v", got, ok)
	}
}

func TestTraceContextRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",                                   // absent
		"deadbeefcafef00d",                   // missing span half
		"deadbeefcafef00d_0123456789abcdef",  // wrong separator
		"deadbeefcafef00d-0123456789abcde",   // short
		"deadbeefcafef00d-0123456789abcdefa", // long
		"zzzzzzzzzzzzzzzz-0123456789abcdef",  // bad hex
		"0000000000000000-0123456789abcdef",  // zero trace ID
		"deadbeefcafef00d-0000000000000000",  // zero span ID
	} {
		if _, ok := ParseTraceContext(bad); ok {
			t.Errorf("ParseTraceContext(%q) accepted malformed input", bad)
		}
	}
	if (TraceContext{}).Encode() != "" {
		t.Fatal("invalid context must encode to the empty string")
	}
}

func TestRootSpanBeginsOwnTrace(t *testing.T) {
	tr := NewTracer(7, 8)
	root := tr.Start("root")
	child := root.Child("child")
	grand := child.Child("grand")
	grand.End()
	child.End()
	root.End()
	tc := root.Context()
	if tc.TraceID != root.ID() || tc.SpanID != root.ID() {
		t.Fatalf("root context = %+v, want trace==span==%016x", tc, root.ID())
	}
	for _, rec := range tr.Spans() {
		if rec.Trace != root.ID() {
			t.Fatalf("span %q escaped the root trace: %+v", rec.Name, rec)
		}
	}
}

func TestStartRemoteParentsOntoClientSpan(t *testing.T) {
	// Two tracers standing in for two processes: the server-side span must
	// join the client's trace and parent onto the client span.
	client := NewTracer(1, 8)
	server := NewTracer(2, 8)
	req := client.Start("request")
	remote := server.StartRemote(req.Context(), "handle")
	remote.End()
	req.End()
	rec := server.Spans()[0]
	if rec.Parent != req.ID() || rec.Trace != req.Context().TraceID {
		t.Fatalf("remote span not parented onto client span: %+v want parent=%016x", rec, req.ID())
	}
}

func TestStartRemoteInvalidContextDegradesToRoot(t *testing.T) {
	tr := NewTracer(7, 8)
	s := tr.StartRemote(TraceContext{}, "orphan")
	s.End()
	rec := tr.Spans()[0]
	if rec.Parent != 0 || rec.Trace != rec.ID {
		t.Fatalf("invalid context must yield a fresh root, got %+v", rec)
	}
}

func TestSpanContextPropagationHelpers(t *testing.T) {
	tr := NewTracer(7, 8)
	s := tr.Start("carrier")
	ctx := ContextWith(context.Background(), s)
	if FromContext(ctx) != s {
		t.Fatal("FromContext must return the carried span")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on a bare context must be nil")
	}
	base := context.Background()
	if ContextWith(base, nil) != base {
		t.Fatal("ContextWith(nil span) must return ctx unchanged")
	}
	var nilSpan *Span
	if nilSpan.Context() != (TraceContext{}) {
		t.Fatal("nil span context must be zero")
	}
}

func TestRemoteSpanIDsDeterministic(t *testing.T) {
	// Same seeds, same workload → same IDs across both processes, so a
	// chaos replay's causal tree diffs clean against the original.
	build := func() (uint64, uint64) {
		client := NewTracer(11, 8)
		server := NewTracer(12, 8)
		server.SetNow(func() time.Duration { return 0 })
		req := client.Start("request", "name", "n1")
		h := server.StartRemote(req.Context(), "handle", "op", "lookup")
		h.End()
		req.End()
		return req.ID(), h.ID()
	}
	c1, s1 := build()
	c2, s2 := build()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("span IDs not deterministic: (%x,%x) vs (%x,%x)", c1, s1, c2, s2)
	}
}
