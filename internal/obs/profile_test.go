package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestProfilerPhasesAndCounterDeltas(t *testing.T) {
	reg := NewRegistry()
	hits := reg.Counter("locind_memo_hits_total", "memo hits")
	misses := reg.Counter("locind_memo_misses_total", "memo misses")
	rows := reg.Counter("locind_rows_total", "rows")

	p := NewProfiler(reg)
	var tick time.Duration
	p.SetNow(func() time.Duration { tick += 10 * time.Millisecond; return tick })

	ph := p.Begin("build-world")
	rows.Add(100)
	ph.End()

	ph = p.Begin("fig8")
	hits.Add(30)
	misses.Add(10)
	ph.End()

	phases := p.Phases()
	if len(phases) != 2 || phases[0].Name != "build-world" || phases[1].Name != "fig8" {
		t.Fatalf("phase list wrong: %+v", phases)
	}
	if d := phases[0].Counters["locind_rows_total"]; d != 100 {
		t.Fatalf("build-world rows delta = %d, want 100", d)
	}
	if _, ok := phases[1].Counters["locind_rows_total"]; ok {
		t.Fatal("fig8 must not see build-world's counter increments")
	}
	if r := phases[1].MemoHitRate(); r != 0.75 {
		t.Fatalf("fig8 memo hit rate = %v, want 0.75", r)
	}
	if r := phases[0].MemoHitRate(); r != -1 {
		t.Fatalf("phase without memo traffic must report -1, got %v", r)
	}
	for _, ps := range phases {
		if ps.Wall <= 0 {
			t.Fatalf("phase %q wall time not positive with a ticking clock: %+v", ps.Name, ps)
		}
		if ps.GoroutineHigh < 1 {
			t.Fatalf("phase %q goroutine high-water mark = %d", ps.Name, ps.GoroutineHigh)
		}
	}
}

func TestProfilerPhaseEndTwiceCommitsOnce(t *testing.T) {
	p := NewProfiler(nil)
	ph := p.Begin("once")
	ph.End()
	ph.End()
	if got := len(p.Phases()); got != 1 {
		t.Fatalf("double End committed %d phases, want 1", got)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	p.SetNow(func() time.Duration { return 0 })
	ph := p.Begin("ghost")
	ph.End()
	if p.Phases() != nil {
		t.Fatal("nil profiler must report no phases")
	}
	var nilPhase *ProfPhase
	nilPhase.End()
}

func TestProfilerReportRendering(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("locind_memo_hits_total", "memo hits")
	p := NewProfiler(reg)
	ph := p.Begin("fig11b")
	reg.Counter("locind_memo_hits_total", "memo hits").Add(5)
	ph.End()

	var md strings.Builder
	p.WriteReport(&md)
	report := md.String()
	for _, want := range []string{"# RUNREPORT", "| fig11b |", "locind_memo_hits_total | 5"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}

	var js strings.Builder
	p.WriteJSON(&js)
	var doc struct {
		Phases []PhaseStats `json:"phases"`
	}
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatalf("JSON artifact invalid: %v\n%s", err, js.String())
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Counters["locind_memo_hits_total"] != 5 {
		t.Fatalf("JSON artifact wrong: %+v", doc.Phases)
	}

	// Empty profiler renders the explicit no-phases form, not a bare table.
	var empty strings.Builder
	NewProfiler(nil).WriteReport(&empty)
	if !strings.Contains(empty.String(), "(no phases recorded)") {
		t.Fatalf("empty report:\n%s", empty.String())
	}
}
