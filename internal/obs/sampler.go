package obs

import (
	"runtime"
	"sync"
	"time"
)

// Sampler periodically snapshots a Registry into fixed-capacity Series
// rings — the time-series layer behind /debug/timeseries, the /debug/dash
// sparklines, and the SeriesCheck health assertions. It owns no clock: the
// caller drives Tick (a daemon from a time.Ticker goroutine, a test by
// hand), keeping this package clock-free and tests deterministic, exactly
// like the tracer's injected now.
//
// Memory model: every registry series costs one ring of Capacity float64s
// (histograms cost five: _count, _sum, and the interpolated _p50/_p95/_p99
// quantile series), allocated once when the series is first seen and never
// grown — a long soak's sampler is constant memory, and the steady-state
// per-tick snapshot path is allocation-free (pinned by the generated
// allocguard test). Metrics registered after the sampler starts are picked
// up on their first tick; their rings simply start later.
type Sampler struct {
	mu       sync.Mutex
	reg      *Registry
	capacity int
	interval time.Duration

	known   int // registry series already synced
	sources []source
	byKey   map[string]*Series
	order   []*Series
	pre     []func()
	checks  []checkBinding
	ticks   int64

	scratch []float64 // check-evaluation buffer, reused
}

// source samples one registry series into its ring(s) each tick.
type source struct {
	kind metricKind
	c    *Counter
	g    *Gauge

	h   *Histogram
	cum []int64 // histogram cumulative-count scratch, len(bounds)

	out *Series // counter/gauge value, or histogram _count
	sum *Series
	p50 *Series
	p95 *Series
	p99 *Series
}

// checkBinding attaches one SeriesCheck to one series key.
type checkBinding struct {
	name  string
	key   string
	check SeriesCheck
}

// DefaultSeriesCapacity is the ring size samplers default to: at a 200ms
// tick it retains the trailing ~13 minutes, and costs 32 KiB per series.
const DefaultSeriesCapacity = 4096

// NewSampler builds a sampler over reg with the given ring capacity per
// series (values below 4 take DefaultSeriesCapacity; four is the floor the
// quarter-median checks need). A nil registry yields a nil sampler — the
// disabled state, on which every method is a no-op.
func NewSampler(reg *Registry, capacity int) *Sampler {
	if reg == nil {
		return nil
	}
	if capacity < 4 {
		capacity = DefaultSeriesCapacity
	}
	return &Sampler{reg: reg, capacity: capacity, byKey: map[string]*Series{}}
}

// SetInterval records the nominal tick period for reports and dumps; the
// sampler itself never sleeps (the caller owns the ticker).
func (s *Sampler) SetInterval(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.interval = d
	s.mu.Unlock()
}

// Interval returns the recorded nominal tick period (0 if never set).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interval
}

// Pre registers a hook run at the start of every tick, before sampling —
// the place to refresh derived gauges (runtime heap, per-shard rollups,
// event rates) so the same tick that computes them also records them.
func (s *Sampler) Pre(fn func()) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.pre = append(s.pre, fn)
	s.mu.Unlock()
}

// Check binds a SeriesCheck to the series with the given key (Series.Key
// form: name or name{labels}). Re-using a name replaces the prior binding.
// A key that never materializes evaluates vacuously OK with a "series not
// sampled" detail, so checks can be declared before the first tick.
func (s *Sampler) Check(name, seriesKey string, c SeriesCheck) {
	if s == nil || c == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.checks {
		if s.checks[i].name == name {
			s.checks[i] = checkBinding{name: name, key: seriesKey, check: c}
			return
		}
	}
	s.checks = append(s.checks, checkBinding{name: name, key: seriesKey, check: c})
}

// Tick takes one sample of every registry series: pre-hooks first, then a
// cold sync picking up newly registered metrics, then the zero-alloc
// snapshot into the rings.
func (s *Sampler) Tick() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, fn := range s.pre {
		fn()
	}
	s.sync()
	s.snapshot()
	s.ticks++
}

// Ticks returns how many samples each (fully synced) ring has received.
func (s *Sampler) Ticks() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// sync builds sources and rings for registry series seen for the first
// time. This is the allocating cold path; it runs at most once per newly
// registered metric and is a length comparison otherwise.
func (s *Sampler) sync() {
	s.reg.mu.Lock()
	fresh := s.reg.series[s.known:]
	s.known = len(s.reg.series)
	s.reg.mu.Unlock()
	for _, rs := range fresh {
		src := source{kind: rs.kind, c: rs.c, g: rs.g, h: rs.h}
		switch rs.kind {
		case kindCounter, kindGauge:
			src.out = s.addSeries(rs.name, rs.pairs)
		case kindHistogram:
			src.cum = make([]int64, len(rs.h.bounds))
			src.out = s.addSeries(rs.name+"_count", rs.pairs)
			src.sum = s.addSeries(rs.name+"_sum", rs.pairs)
			src.p50 = s.addSeries(rs.name+"_p50", rs.pairs)
			src.p95 = s.addSeries(rs.name+"_p95", rs.pairs)
			src.p99 = s.addSeries(rs.name+"_p99", rs.pairs)
		}
		s.sources = append(s.sources, src)
	}
}

// addSeries creates (or reuses) the ring for one sampled series identity.
func (s *Sampler) addSeries(name string, pairs []labelPair) *Series {
	key := name + wrapLabels(renderLabels(pairs))
	if sr, ok := s.byKey[key]; ok {
		return sr
	}
	sr := newSeries(name, pairs, key, s.capacity)
	s.byKey[key] = sr
	s.order = append(s.order, sr)
	return sr
}

// snapshot pushes one sample of every synced source into its ring: atomic
// loads, bucket arithmetic, and ring index writes only.
//
//lint:zeroalloc per tick once the series rings are allocated (sync is the cold path)
func (s *Sampler) snapshot() {
	for i := range s.sources {
		src := &s.sources[i]
		switch src.kind {
		case kindCounter:
			src.out.push(float64(src.c.Value()))
		case kindGauge:
			src.out.push(float64(src.g.Value()))
		case kindHistogram:
			h := src.h
			cum := int64(0)
			for b := range h.counts {
				cum += h.counts[b].Load()
				src.cum[b] = cum
			}
			total := h.Count()
			src.out.push(float64(total))
			src.sum.push(h.Sum())
			src.p50.push(quantileFromCum(h.bounds, src.cum, total, 0.50))
			src.p95.push(quantileFromCum(h.bounds, src.cum, total, 0.95))
			src.p99.push(quantileFromCum(h.bounds, src.cum, total, 0.99))
		}
	}
}

// Series returns the ring with the given key, or nil. The caller must not
// read it concurrently with ticks — use Values for a safe copy.
func (s *Sampler) Series(key string) *Series {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key]
}

// Values appends the retained samples of the series with the given key
// (oldest first) onto dst; unknown keys append nothing.
func (s *Sampler) Values(key string, dst []float64) []float64 {
	if s == nil {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byKey[key].Values(dst)
}

// Keys returns every sampled series key, in first-seen order.
func (s *Sampler) Keys() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, len(s.order))
	for i, sr := range s.order {
		keys[i] = sr.key
	}
	return keys
}

// EvalChecks evaluates every bound check against the current rings, in
// binding order. Checks whose series has not materialized pass vacuously.
func (s *Sampler) EvalChecks() []CheckResult {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]CheckResult, 0, len(s.checks))
	for _, cb := range s.checks {
		res := CheckResult{Name: cb.name, Series: cb.key, Kind: cb.check.Kind()}
		if sr, ok := s.byKey[cb.key]; ok {
			s.scratch = sr.Values(s.scratch[:0])
			res.OK, res.Detail = cb.check.Eval(s.scratch)
		} else {
			res.OK, res.Detail = true, "series not sampled (yet)"
		}
		out = append(out, res)
	}
	return out
}

// Healthy reduces EvalChecks to the /healthz answer: ok when every check
// passes, otherwise false with the failing results.
func (s *Sampler) Healthy() (bool, []CheckResult) {
	results := s.EvalChecks()
	var failed []CheckResult
	for _, r := range results {
		if !r.OK {
			failed = append(failed, r)
		}
	}
	return len(failed) == 0, failed
}

// RuntimeSampler returns a Pre hook that refreshes process-level runtime
// gauges — heap in use and goroutine count — on reg, so every tick records
// them alongside the application metrics. Registering is idempotent (the
// registry hands back the same gauges).
func RuntimeSampler(reg *Registry) func() {
	heap := reg.Gauge("locind_runtime_heap_inuse_bytes", "runtime.MemStats.HeapInuse at the last sample tick")
	gor := reg.Gauge("locind_runtime_goroutines", "goroutine count at the last sample tick")
	return func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(int64(ms.HeapInuse))
		gor.Set(int64(runtime.NumGoroutine()))
	}
}
