package obs

import (
	"fmt"
	"strings"
	"time"
)

// SpanNode is one span in an assembled causal tree.
type SpanNode struct {
	SpanRecord
	Children []*SpanNode
}

// BuildTree assembles span records into causal trees: each span hangs off
// its parent when the parent was recorded too, and becomes a root
// otherwise (true trace roots, and spans whose remote parent lives in
// another process's tracer). Order is deterministic — children keep record
// (commit) order and roots keep first-appearance order — so the tree of a
// seeded run is replayable structure-for-structure.
func BuildTree(spans []SpanRecord) []*SpanNode {
	nodes := make(map[uint64]*SpanNode, len(spans))
	ordered := make([]*SpanNode, 0, len(spans))
	for _, rec := range spans {
		n := &SpanNode{SpanRecord: rec}
		nodes[rec.ID] = n
		ordered = append(ordered, n)
	}
	var roots []*SpanNode
	for _, n := range ordered {
		if p, ok := nodes[n.Parent]; ok && n.Parent != n.ID {
			p.Children = append(p.Children, n)
			continue
		}
		roots = append(roots, n)
	}
	return roots
}

// Tree assembles the tracer's retained spans into causal trees.
func (t *Tracer) Tree() []*SpanNode { return BuildTree(t.Spans()) }

// WriteChrome renders the retained spans as Chrome trace_event JSON
// (the chrome://tracing / Perfetto "JSON Object Format"): one complete
// ("ph":"X") event per span, timestamps in microseconds from the injected
// clock (zero without one — the viewer still shows structure), traces
// mapped to thread lanes so one causal tree renders as one lane. The
// span/trace/parent IDs ride in args, hex-encoded, so a test can walk the
// exported causal tree exactly as a human would in the viewer.
func (t *Tracer) WriteChrome(b *strings.Builder) {
	spans := t.Spans()
	b.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	// Lanes: one tid per trace, numbered in first-appearance order so the
	// same seeded run always lays traces out identically.
	lanes := map[uint64]int{}
	for _, rec := range spans {
		if _, ok := lanes[rec.Trace]; !ok {
			lanes[rec.Trace] = len(lanes) + 1
		}
	}
	for i, rec := range spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(b, `{"name":%q,"cat":"span","ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"args":{"id":"%016x","trace":"%016x"`,
			rec.Name, lanes[rec.Trace],
			rec.Start/time.Microsecond, rec.Dur/time.Microsecond,
			rec.ID, rec.Trace)
		if rec.Parent != 0 {
			fmt.Fprintf(b, `,"parent":"%016x"`, rec.Parent)
		}
		for j := 0; j+1 < len(rec.Labels); j += 2 {
			fmt.Fprintf(b, `,"label_%s":%q`, rec.Labels[j], rec.Labels[j+1])
		}
		b.WriteString("}}")
	}
	b.WriteString("]}")
}
