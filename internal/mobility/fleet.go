// Streaming fleet generation. GenerateDeviceTrace materializes every visit
// of every user up front, which is fine for the paper's 372-user trace but
// not for the million-device nomad engine (internal/nomad/engine): at that
// scale the fleet's full trace is tens of gigabytes. FleetGen instead
// generates one user-day at a time from seeds derived per (user, day), so a
// caller holding only a few bytes of persistent state per user (UserState)
// can stream an arbitrarily large fleet at bounded memory.
//
// The derived-seed model intentionally differs from GenerateDeviceTrace's
// single shared rng: there, user N's draws depend on every draw users
// 0..N-1 made, which forces sequential generation of the whole fleet.
// Deriving an independent stream per (user, day) makes any user's any day
// computable in O(1) — the property sharding and replay both need. The
// per-day statistics (dwell structure, churn rates, class mix) are the same
// calibrated model either way; only the random stream assignment differs.
package mobility

import (
	"fmt"
	"math/rand"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/netaddr"
)

// splitSource is an 8-byte splitmix64 rand.Source64. rand.NewSource's
// default source carries a ~5 KiB state table — far too heavy to derive per
// user-day — while splitmix64 reseeds by assigning one word.
type splitSource struct{ state uint64 }

// Seed implements rand.Source.
func (s *splitSource) Seed(v int64) { s.state = uint64(v) }

// Uint64 implements rand.Source64 (splitmix64).
func (s *splitSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *splitSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// mix64 is the splitmix64 finalizer, used to fold seed coordinates.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// deriveSeed mixes the fleet seed with a user index and a stream tag into
// one well-spread 64-bit state. stream is either a day number or the
// profile tag (^uint64(0), which no day reaches).
func deriveSeed(seed int64, user, stream uint64) uint64 {
	h := mix64(uint64(seed) + 0x9e3779b97f4a7c15)
	h = mix64(h ^ (user + 0x9e3779b97f4a7c15))
	return mix64(h ^ (stream + 0x9e3779b97f4a7c15))
}

// profileStream is the stream tag reserved for profile regeneration.
const profileStream = ^uint64(0)

// UserState is the persistent cross-day state of one streamed user: the
// home address as evolved by DHCP turnover and the carrier-grade-NAT
// session. The zero value is a brand-new user; at 16 bytes it is what makes
// million-user fleets affordable.
type UserState struct {
	homeAddr netaddr.Addr
	homeSet  bool
	cell     cellState
}

// DayScratch holds the reusable buffers one generation stream needs: the
// derived-seed rng, the regenerated profile, and the day-schedule segments.
// It is not safe for concurrent use; give each shard its own.
type DayScratch struct {
	src  splitSource
	rng  *rand.Rand
	prof userProfile
	segs []daySeg
}

// NewDayScratch builds a scratch ready for FleetGen.Day.
func NewDayScratch() *DayScratch {
	sc := &DayScratch{}
	sc.rng = rand.New(&sc.src)
	return sc
}

// FleetGen generates per-user mobility days on demand. It is immutable
// after construction and safe to share across shards (all mutable state
// lives in UserState and DayScratch).
type FleetGen struct {
	pools *accessPools
	pt    *bgp.PrefixTable
	cfg   DeviceConfig
	seed  int64
}

// NewFleetGen validates the config and snapshots the access pools. cfg.Users
// is ignored — the fleet size is whatever range of user indices the caller
// asks Day for.
func NewFleetGen(g *asgraph.Graph, pt *bgp.PrefixTable, cfg DeviceConfig, seed int64) (*FleetGen, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("mobility: need positive days, have %d", cfg.Days)
	}
	pools, err := buildAccessPools(g, cfg)
	if err != nil {
		return nil, err
	}
	return &FleetGen{pools: pools, pt: pt, cfg: cfg, seed: seed}, nil
}

// Days returns the configured trace length in days.
func (f *FleetGen) Days() int { return f.cfg.Days }

// Day appends user's visits for the given day (hours [24d, 24d+24), tiling
// the day with at least one visit) onto buf and returns it. st carries the
// user's cross-day state and must be threaded through consecutive days in
// order, starting from the zero value at day 0. The result is a pure
// function of (seed, user, day, st): same inputs, byte-identical visits —
// the property the engine's same-seed soak replay rests on.
func (f *FleetGen) Day(user, day int, st *UserState, buf []Visit, sc *DayScratch) []Visit {
	// Regenerate the user's stable profile from its own stream, then
	// overlay the evolved home address.
	sc.src.state = deriveSeed(f.seed, uint64(user), profileStream)
	fillProfile(&sc.prof, f.pools, f.pt, f.cfg, sc.rng)
	if st.homeSet {
		sc.prof.home = locIn(f.pt, sc.prof.home.AS, st.homeAddr, WiFi)
	}

	// The day's own stream: DHCP turnover first, then the schedule.
	sc.src.state = deriveSeed(f.seed, uint64(user), uint64(day))
	if day > 0 && sc.rng.Float64() < f.cfg.HomeDHCPDaily {
		sc.prof.home = locIn(f.pt, sc.prof.home.AS, randomHostIn(f.pt, sc.prof.home.AS, sc.rng), WiFi)
	}
	st.homeAddr, st.homeSet = sc.prof.home.Addr, true

	lo := len(buf)
	buf = simulateDayInto(buf, &sc.prof, f.pt, f.cfg, day, &st.cell, sc.rng, &sc.segs)
	return mergeAdjacentFrom(buf, lo)
}
