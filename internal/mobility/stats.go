package mobility

import (
	"sort"

	"locind/internal/netaddr"
)

// DayStats summarizes one user-day: distinct locations visited, transition
// counts, and the dominant-location dwell fractions of §6.3.1, at each of
// the three granularities the paper plots (IP address, routable prefix, AS).
type DayStats struct {
	DistinctIPs      int
	DistinctPrefixes int
	DistinctASes     int

	IPTransitions     int
	PrefixTransitions int
	ASTransitions     int

	// Dominant-location dwell fractions (time at the single location where
	// the user spent the most time, divided by total observed time).
	DominantIPFrac     float64
	DominantPrefixFrac float64
	DominantASFrac     float64

	// DominantAS is the AS where the user spent the most time; TimeAwayFromAS
	// maps each visited AS to the fraction of the day spent there, which the
	// stretch analysis (§6.3) uses to weight AS-hop displacement.
	DominantAS int
	ASDwell    map[int]float64
}

// DayStats computes statistics for one day of a user trace. Days with no
// visits return the zero DayStats (DominantAS -1).
func (ut *UserTrace) DayStats(day int) DayStats {
	s := DayStats{DominantAS: -1}
	ipTime := map[netaddr.Addr]float64{}
	pfxTime := map[netaddr.Prefix]float64{}
	asTime := map[int]float64{}
	total := 0.0
	var prev *Visit
	for i := range ut.Visits {
		v := &ut.Visits[i]
		if v.Day() != day {
			if v.Day() > day {
				break
			}
			prev = v
			continue
		}
		ipTime[v.Loc.Addr] += v.Dur
		pfxTime[v.Loc.Prefix] += v.Dur
		asTime[v.Loc.AS] += v.Dur
		total += v.Dur
		if prev != nil {
			if prev.Loc.Addr != v.Loc.Addr {
				s.IPTransitions++
			}
			if prev.Loc.Prefix != v.Loc.Prefix {
				s.PrefixTransitions++
			}
			if prev.Loc.AS != v.Loc.AS {
				s.ASTransitions++
			}
		}
		prev = v
	}
	s.DistinctIPs = len(ipTime)
	s.DistinctPrefixes = len(pfxTime)
	s.DistinctASes = len(asTime)
	if total <= 0 {
		return s
	}
	maxIP, maxPfx, maxAS := 0.0, 0.0, 0.0
	for _, t := range ipTime {
		if t > maxIP {
			maxIP = t
		}
	}
	for _, t := range pfxTime {
		if t > maxPfx {
			maxPfx = t
		}
	}
	s.ASDwell = make(map[int]float64, len(asTime))
	for as, t := range asTime {
		s.ASDwell[as] = t / total
		if t > maxAS {
			maxAS = t
			s.DominantAS = as
		}
	}
	s.DominantIPFrac = maxIP / total
	s.DominantPrefixFrac = maxPfx / total
	s.DominantASFrac = maxAS / total
	return s
}

// UserAverages is the per-user daily average used on the x-axes of
// Figures 6 and 7.
type UserAverages struct {
	User int

	AvgDistinctIPs      float64
	AvgDistinctPrefixes float64
	AvgDistinctASes     float64

	AvgIPTransitions     float64
	AvgPrefixTransitions float64
	AvgASTransitions     float64
}

// PerUserDailyAverages computes, for each user, the average-per-day distinct
// location counts and transition counts across all days the user appears.
func (dt *DeviceTrace) PerUserDailyAverages() []UserAverages {
	out := make([]UserAverages, 0, len(dt.Users))
	for ui := range dt.Users {
		u := &dt.Users[ui]
		var agg UserAverages
		agg.User = u.ID
		days := 0
		for d := 0; d < dt.Days; d++ {
			s := u.DayStats(d)
			if s.DistinctIPs == 0 {
				continue
			}
			days++
			agg.AvgDistinctIPs += float64(s.DistinctIPs)
			agg.AvgDistinctPrefixes += float64(s.DistinctPrefixes)
			agg.AvgDistinctASes += float64(s.DistinctASes)
			agg.AvgIPTransitions += float64(s.IPTransitions)
			agg.AvgPrefixTransitions += float64(s.PrefixTransitions)
			agg.AvgASTransitions += float64(s.ASTransitions)
		}
		if days == 0 {
			continue
		}
		f := float64(days)
		agg.AvgDistinctIPs /= f
		agg.AvgDistinctPrefixes /= f
		agg.AvgDistinctASes /= f
		agg.AvgIPTransitions /= f
		agg.AvgPrefixTransitions /= f
		agg.AvgASTransitions /= f
		out = append(out, agg)
	}
	return out
}

// DominantFractions collects, over every user-day with observations, the
// dominant-location dwell fractions — the sample plotted in Figure 9.
func (dt *DeviceTrace) DominantFractions() (ip, prefix, as []float64) {
	for ui := range dt.Users {
		u := &dt.Users[ui]
		for d := 0; d < dt.Days; d++ {
			s := u.DayStats(d)
			if s.DistinctIPs == 0 {
				continue
			}
			ip = append(ip, s.DominantIPFrac)
			prefix = append(prefix, s.DominantPrefixFrac)
			as = append(as, s.DominantASFrac)
		}
	}
	return ip, prefix, as
}

// DominantPair is a (dominant, visited) AS pair weighted by dwell time,
// feeding the §6.3 displacement-from-home analysis.
type DominantPair struct {
	User       int
	DominantAS int
	VisitedAS  int
	DwellFrac  float64 // fraction of that user-day spent at VisitedAS
}

// DominantDisplacements lists, for every user-day, each non-dominant AS the
// user visited together with its dwell fraction.
func (dt *DeviceTrace) DominantDisplacements() []DominantPair {
	var out []DominantPair
	for ui := range dt.Users {
		u := &dt.Users[ui]
		for d := 0; d < dt.Days; d++ {
			s := u.DayStats(d)
			if s.DominantAS < 0 {
				continue
			}
			ases := make([]int, 0, len(s.ASDwell))
			for as := range s.ASDwell {
				ases = append(ases, as)
			}
			sort.Ints(ases)
			for _, as := range ases {
				if as == s.DominantAS {
					continue
				}
				out = append(out, DominantPair{
					User:       u.ID,
					DominantAS: s.DominantAS,
					VisitedAS:  as,
					DwellFrac:  s.ASDwell[as],
				})
			}
		}
	}
	return out
}
