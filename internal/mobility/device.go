// Package mobility generates and analyzes the two measured workloads of the
// paper: device mobility across network locations (the NomadLog dataset of
// §4/§6) and the IMAP-style proxy workload used in the §6.2.2 sensitivity
// analysis. Content mobility timelines live in internal/cdn, which owns the
// address-assignment machinery they need.
//
// The device generator is a per-user semi-Markov dwell model over a small
// pool of access networks (home, work, cellular, occasional other WiFi)
// with heavy-tailed per-user switching rates. Its knobs are calibrated so
// the aggregate statistics match what the paper reports for its 372 users:
// median 2 ASes / 2 prefixes / 3 IP addresses visited per day, median 1 AS
// and 3 IP transitions per day, more than 20% of users exceeding 10 IP
// addresses per day, and a dominant location holding ~70% (IP) / ~85% (AS)
// of the median day.
package mobility

import (
	"fmt"
	"math"
	"math/rand"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/netaddr"
)

// NetType is the access technology of a connectivity event.
type NetType uint8

// Access network types logged by the NomadLog schema.
const (
	WiFi NetType = iota
	Cellular
)

// String returns the log-format name of the network type.
func (n NetType) String() string {
	if n == Cellular {
		return "cellular"
	}
	return "wifi"
}

// Location is a network attachment point: the public-facing address the
// device observes, the covering routable prefix, and the access AS.
type Location struct {
	AS     int
	Prefix netaddr.Prefix
	Addr   netaddr.Addr
	Net    NetType
}

// Visit is one dwell interval at a location. Times are in hours from the
// start of the trace; Start+Dur never crosses a day boundary (the generator
// splits visits at midnight so per-day accounting stays exact).
type Visit struct {
	Start float64
	Dur   float64
	Loc   Location
}

// Day returns the trace day this visit belongs to.
func (v Visit) Day() int { return int(v.Start / 24) }

// UserTrace is the full trace of a single device.
type UserTrace struct {
	ID     int
	Region asgraph.Region
	HomeAS int
	Visits []Visit
}

// DeviceTrace is the NomadLog-equivalent dataset.
type DeviceTrace struct {
	Days  int
	Users []UserTrace
}

// MoveEvent is a single address transition: the device left From and
// attached at To. These are the mobility events whose update cost §6.2
// evaluates against router FIBs.
type MoveEvent struct {
	User     int
	Day      int
	From, To Location
}

// MoveEvents flattens the trace into the chronological list of address
// transitions per user (visits whose address differs from the previous
// visit's address).
func (dt *DeviceTrace) MoveEvents() []MoveEvent {
	var out []MoveEvent
	for _, u := range dt.Users {
		for i := 1; i < len(u.Visits); i++ {
			prev, cur := u.Visits[i-1], u.Visits[i]
			if prev.Loc.Addr == cur.Loc.Addr {
				continue
			}
			out = append(out, MoveEvent{
				User: u.ID,
				Day:  cur.Day(),
				From: prev.Loc,
				To:   cur.Loc,
			})
		}
	}
	return out
}

// DeviceConfig parameterizes device-trace generation.
type DeviceConfig struct {
	Users int
	Days  int

	// EyeballsPerRegion is the number of stub ASes per region that serve as
	// home/work access networks; CellularPerRegion is the number of mobile
	// carriers per region. Small pools are deliberate: real users cluster
	// onto a handful of large eyeball networks, and the recurrence of the
	// same AS pairs across events is what keeps router update rates in the
	// paper's single-digit-to-14% band.
	EyeballsPerRegion  int
	CellularPerRegion  int
	OtherWiFiPerRegion int

	// User class mix. Commuters attach at a workplace network on weekdays;
	// homebodies rarely leave home; cellular-primary users live on LTE with
	// carrier-grade-NAT address churn (they are the >10-IPs-per-day tail,
	// which the paper observes for over 20% of users); the remainder are
	// casual users with occasional outings.
	CommuterFrac    float64
	HomebodyFrac    float64
	CellPrimaryFrac float64

	// CommuteCellProb is the probability that a commute leg attaches to
	// cellular at all (a short commute with the screen off often does not).
	CommuteCellProb float64

	// CellChurnHours is the mean time between public-address changes while
	// camped on cellular (CGNAT re-mapping).
	CellChurnHours float64

	// BounceMu/BounceSigma shape the lognormal per-user rate of extra
	// WiFi<->cellular bounces per day.
	BounceMu    float64
	BounceSigma float64

	// CellSessionReuse is the probability that a cellular reattachment
	// within the same day keeps its previous public address (carrier-grade
	// NAT session persistence).
	CellSessionReuse float64

	// HomeDHCPDaily is the per-day probability that the home address
	// changes (DHCP lease turnover).
	HomeDHCPDaily float64

	// RegionWeights places users in regions; the default mix matches the
	// paper's user base (US, Europe, South America).
	RegionWeights map[asgraph.Region]float64
}

// DefaultDeviceConfig returns the calibrated configuration used in the
// experiments.
func DefaultDeviceConfig() DeviceConfig {
	return DeviceConfig{
		Users:              372,
		Days:               28,
		EyeballsPerRegion:  24,
		CellularPerRegion:  3,
		OtherWiFiPerRegion: 12,
		CommuterFrac:       0.45,
		HomebodyFrac:       0.12,
		CellPrimaryFrac:    0.22,
		CommuteCellProb:    0.25,
		CellChurnHours:     1.2,
		BounceMu:           math.Log(0.3),
		BounceSigma:        1.3,
		CellSessionReuse:   0.45,
		HomeDHCPDaily:      0.03,
		RegionWeights: map[asgraph.Region]float64{
			asgraph.NorthAmerica: 0.55,
			asgraph.Europe:       0.28,
			asgraph.SouthAmerica: 0.17,
		},
	}
}

// userClass buckets users by their daily rhythm.
type userClass uint8

const (
	classCasual userClass = iota
	classCommuter
	classHomebody
	classCellPrimary
)

// userProfile is the stable per-user state the day simulator draws on.
type userProfile struct {
	region     asgraph.Region
	class      userClass
	home       Location
	work       Location
	cellAS     int
	cellBase   uint64 // base host index of the user's CGNAT /24 pool
	otherWiFis []Location
	bounceRate float64 // mean extra bounces per day
	wakeJitter float64
}

// GenerateDeviceTrace synthesizes the NomadLog-equivalent trace over the
// given internetwork and address plan.
func GenerateDeviceTrace(g *asgraph.Graph, pt *bgp.PrefixTable, cfg DeviceConfig, rng *rand.Rand) (*DeviceTrace, error) {
	if cfg.Users <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("mobility: need positive users and days, have %d users %d days", cfg.Users, cfg.Days)
	}
	pools, err := buildAccessPools(g, cfg)
	if err != nil {
		return nil, err
	}
	dt := &DeviceTrace{Days: cfg.Days, Users: make([]UserTrace, 0, cfg.Users)}
	var segScratch []daySeg
	for id := 0; id < cfg.Users; id++ {
		prof := newProfile(pools, pt, cfg, rng)
		ut := UserTrace{ID: id, Region: prof.region, HomeAS: prof.home.AS}
		cell := cellState{}
		for day := 0; day < cfg.Days; day++ {
			// DHCP turnover of the home address.
			if day > 0 && rng.Float64() < cfg.HomeDHCPDaily {
				prof.home = locIn(pt, prof.home.AS, randomHostIn(pt, prof.home.AS, rng), WiFi)
			}
			ut.Visits = simulateDayInto(ut.Visits, prof, pt, cfg, day, &cell, rng, &segScratch)
		}
		ut.Visits = mergeAdjacent(ut.Visits)
		dt.Users = append(dt.Users, ut)
	}
	return dt, nil
}

// accessPools are the per-region AS pools devices attach through.
type accessPools struct {
	eyeballs map[asgraph.Region][]int
	cellular map[asgraph.Region][]int
	wifi     map[asgraph.Region][]int
}

func buildAccessPools(g *asgraph.Graph, cfg DeviceConfig) (*accessPools, error) {
	p := &accessPools{
		eyeballs: map[asgraph.Region][]int{},
		cellular: map[asgraph.Region][]int{},
		wifi:     map[asgraph.Region][]int{},
	}
	for region := range cfg.RegionWeights {
		stubs := g.StubsInRegion(region)
		need := cfg.EyeballsPerRegion + cfg.CellularPerRegion + cfg.OtherWiFiPerRegion
		if len(stubs) < need {
			return nil, fmt.Errorf("mobility: region %v has %d stubs, need %d", region, len(stubs), need)
		}
		// Deterministic slicing: the first stubs become eyeballs, then
		// carriers, then public-WiFi venues.
		p.eyeballs[region] = stubs[:cfg.EyeballsPerRegion]
		p.cellular[region] = stubs[cfg.EyeballsPerRegion : cfg.EyeballsPerRegion+cfg.CellularPerRegion]
		p.wifi[region] = stubs[cfg.EyeballsPerRegion+cfg.CellularPerRegion : need]
	}
	return p, nil
}

func randomHostIn(pt *bgp.PrefixTable, as int, rng *rand.Rand) netaddr.Addr {
	return pt.AddrIn(as, uint64(rng.Intn(1<<16)))
}

// locIn builds a Location in the given AS. The routable prefix recorded is
// the /24 containing the address (matching how the paper counts
// prefix-level transitions from BGP-visible prefixes).
func locIn(pt *bgp.PrefixTable, as int, addr netaddr.Addr, nt NetType) Location {
	return Location{
		AS:     as,
		Prefix: netaddr.MakePrefix(addr, 24),
		Addr:   addr,
		Net:    nt,
	}
}

func pickRegion(cfg DeviceConfig, rng *rand.Rand) asgraph.Region {
	sum := 0.0
	for _, w := range cfg.RegionWeights {
		sum += w
	}
	x := rng.Float64() * sum
	// Iterate regions in a fixed order for determinism.
	for r := asgraph.Region(0); r < 8; r++ {
		w, ok := cfg.RegionWeights[r]
		if !ok {
			continue
		}
		if x < w {
			return r
		}
		x -= w
	}
	return asgraph.NorthAmerica
}

func newProfile(pools *accessPools, pt *bgp.PrefixTable, cfg DeviceConfig, rng *rand.Rand) *userProfile {
	prof := new(userProfile)
	fillProfile(prof, pools, pt, cfg, rng)
	return prof
}

// fillProfile regenerates a profile in place, reusing prof's otherWiFis
// backing so a scratch profile can be refilled per user without allocating.
// The rng draw order is pinned: for a freshly seeded rng it reproduces
// exactly the profile newProfile has always built.
func fillProfile(prof *userProfile, pools *accessPools, pt *bgp.PrefixTable, cfg DeviceConfig, rng *rand.Rand) {
	region := pickRegion(cfg, rng)
	eyeballs := pools.eyeballs[region]
	homeAS := eyeballs[rng.Intn(len(eyeballs))]
	prof.region = region
	prof.home = locIn(pt, homeAS, randomHostIn(pt, homeAS, rng), WiFi)
	prof.work = Location{}
	prof.cellAS = pools.cellular[region][rng.Intn(len(pools.cellular[region]))]
	prof.cellBase = uint64(rng.Intn(256)) << 8 // one /24 inside the carrier block
	prof.bounceRate = math.Exp(cfg.BounceMu + cfg.BounceSigma*rng.NormFloat64())
	prof.wakeJitter = rng.Float64()
	switch x := rng.Float64(); {
	case x < cfg.HomebodyFrac:
		prof.class = classHomebody
		prof.bounceRate *= 0.1
	case x < cfg.HomebodyFrac+cfg.CommuterFrac:
		prof.class = classCommuter
		workAS := eyeballs[rng.Intn(len(eyeballs))]
		prof.work = locIn(pt, workAS, randomHostIn(pt, workAS, rng), WiFi)
	case x < cfg.HomebodyFrac+cfg.CommuterFrac+cfg.CellPrimaryFrac:
		prof.class = classCellPrimary
	default:
		prof.class = classCasual
	}
	prof.otherWiFis = prof.otherWiFis[:0]
	nOther := 1 + rng.Intn(3)
	for i := 0; i < nOther; i++ {
		wifiAS := pools.wifi[region][rng.Intn(len(pools.wifi[region]))]
		prof.otherWiFis = append(prof.otherWiFis, locIn(pt, wifiAS, randomHostIn(pt, wifiAS, rng), WiFi))
	}
}

// cellAddr mints an address in the user's stable CGNAT /24 pool, which keeps
// prefix-level diversity tied to AS-level diversity the way BGP-visible
// prefixes are in the NomadLog data.
func (prof *userProfile) cellAddr(pt *bgp.PrefixTable, rng *rand.Rand) netaddr.Addr {
	return pt.AddrIn(prof.cellAS, prof.cellBase|uint64(rng.Intn(256)))
}

// cellState tracks carrier-grade-NAT address persistence across a user's
// cellular attachments.
type cellState struct {
	addr  netaddr.Addr
	valid bool
	day   int
}

func (cs *cellState) attach(prof *userProfile, pt *bgp.PrefixTable, day int, reuse float64, rng *rand.Rand) netaddr.Addr {
	if cs.valid && cs.day == day && rng.Float64() < reuse {
		return cs.addr
	}
	cs.addr = prof.cellAddr(pt, rng)
	cs.valid = true
	cs.day = day
	return cs.addr
}

// simulateDayInto lays out one day of visits for a user, appending them to
// buf (which it returns, grown). All times are hours within
// [day*24, day*24+24). segScratch is the reusable segment buffer the day
// schedule is laid out in; a nil *segScratch slice works and simply grows to
// the day's high-water mark. The rng draw order is identical to the original
// allocate-per-day formulation, so generated traces are byte-for-byte
// unchanged.
func simulateDayInto(buf []Visit, prof *userProfile, pt *bgp.PrefixTable, cfg DeviceConfig, day int, cell *cellState, rng *rand.Rand, segScratch *[]daySeg) []Visit {
	base := float64(day) * 24
	weekend := day%7 >= 5
	cellLoc := func() Location {
		addr := cell.attach(prof, pt, day, cfg.CellSessionReuse, rng)
		return locIn(pt, prof.cellAS, addr, Cellular)
	}

	segs := (*segScratch)[:0]
	switch {
	case prof.class == classCommuter && !weekend:
		leave := 7.8 + prof.wakeJitter + 0.5*rng.NormFloat64()
		arrive := leave + 0.4 + 0.3*rng.Float64()
		depart := 16.0 + 1.2*rng.Float64()
		arriveHome := depart + 0.4 + 0.3*rng.Float64()
		// A short commute with the screen off may never attach to cellular.
		if rng.Float64() < cfg.CommuteCellProb {
			segs = append(segs, daySeg{prof.home, clampHour(leave)}, daySeg{cellLoc(), clampHour(arrive)})
		} else {
			segs = append(segs, daySeg{prof.home, clampHour(arrive)})
		}
		if rng.Float64() < cfg.CommuteCellProb {
			segs = append(segs, daySeg{prof.work, clampHour(depart)}, daySeg{cellLoc(), clampHour(arriveHome)})
		} else {
			segs = append(segs, daySeg{prof.work, clampHour(arriveHome)})
		}
		segs = append(segs, daySeg{prof.home, 24})

	case prof.class == classHomebody:
		segs = append(segs, daySeg{prof.home, 24})
		if rng.Float64() < 0.25 { // the occasional errand
			out := 10 + 6*rng.Float64()
			segs = append(segs[:0],
				daySeg{prof.home, clampHour(out)},
				daySeg{cellLoc(), clampHour(out + 0.5 + rng.Float64())},
				daySeg{prof.home, 24},
			)
		}

	case prof.class == classCellPrimary:
		// Camped on LTE through the waking day with CGNAT address churn;
		// home WiFi overnight. High IP churn, low AS churn — the mechanism
		// behind the paper's >10-IPs-a-day users.
		wake := 7 + 2*prof.wakeJitter
		sleep := 20.5 + 3*rng.Float64()
		segs = append(segs, daySeg{prof.home, clampHour(wake)})
		t := wake
		for t < sleep {
			next := t + cfg.CellChurnHours*(0.3+1.4*rng.Float64())
			if next > sleep {
				next = sleep
			}
			addr := prof.cellAddr(pt, rng)
			segs = append(segs, daySeg{locIn(pt, prof.cellAS, addr, Cellular), clampHour(next)})
			t = next
		}
		segs = append(segs, daySeg{prof.home, 24})

	default:
		// Casual user or commuter weekend: home with outings.
		segs = append(segs, daySeg{prof.home, 24})
		if rng.Float64() < 0.55 {
			out := 9 + 8*rng.Float64()
			venue := prof.otherWiFis[rng.Intn(len(prof.otherWiFis))]
			back := out + 1 + 2.5*rng.Float64()
			if rng.Float64() < 0.5 {
				segs = append(segs[:0],
					daySeg{prof.home, clampHour(out)},
					daySeg{cellLoc(), clampHour(out + 0.3)},
					daySeg{venue, clampHour(back)},
					daySeg{cellLoc(), clampHour(back + 0.3)},
					daySeg{prof.home, 24},
				)
			} else {
				segs = append(segs[:0],
					daySeg{prof.home, clampHour(out)},
					daySeg{venue, clampHour(back)},
					daySeg{prof.home, 24},
				)
			}
		}
	}

	// Extra WiFi<->cellular bounces: each splits a WiFi segment with a
	// short cellular interlude.
	nBounce := poisson(prof.bounceRate, rng)
	const maxBounce = 24
	if nBounce > maxBounce {
		nBounce = maxBounce
	}
	for b := 0; b < nBounce; b++ {
		at := 1 + 22*rng.Float64()
		dur := 0.05 + 0.3*rng.Float64()
		segs = insertBounce(segs, at, dur, cellLoc())
	}
	*segScratch = segs[:0]

	// Materialize visits.
	prev := 0.0
	for _, s := range segs {
		if s.end <= prev {
			continue
		}
		buf = append(buf, Visit{Start: base + prev, Dur: s.end - prev, Loc: s.loc})
		prev = s.end
	}
	return buf
}

func clampHour(h float64) float64 {
	if h < 0 {
		return 0
	}
	if h > 24 {
		return 24
	}
	return h
}

// daySeg is a within-day schedule segment: the location occupied until the
// given hour of the day.
type daySeg struct {
	loc Location
	end float64
}

// insertBounce splits the segment covering hour `at` with a cellular
// interlude of the given duration, if the segment is WiFi and long enough.
// The split happens in place (segments after the split point shift right by
// two), so repeated bounces reuse the same backing array.
func insertBounce(segs []daySeg, at, dur float64, cell Location) []daySeg {
	start := 0.0
	for i, s := range segs {
		if at >= start && at+dur < s.end && s.loc.Net == WiFi {
			segs = append(segs, daySeg{}, daySeg{})
			copy(segs[i+3:], segs[i+1:])
			segs[i] = daySeg{s.loc, at}
			segs[i+1] = daySeg{cell, at + dur}
			segs[i+2] = daySeg{s.loc, s.end}
			return segs
		}
		start = s.end
	}
	return segs
}

// mergeAdjacent coalesces consecutive visits at the same address with no
// gap, which arise when a bounce lands at a segment boundary.
func mergeAdjacent(vs []Visit) []Visit {
	return mergeAdjacentFrom(vs, 0)
}

// mergeAdjacentFrom is mergeAdjacent restricted to vs[lo:], compacting in
// place. The streaming generator appends one user-day at a time onto a
// shared arena, so merging must never reach across the region boundary into
// another user's visits.
func mergeAdjacentFrom(vs []Visit, lo int) []Visit {
	if len(vs)-lo < 1 {
		return vs
	}
	out := vs[:lo+1]
	for _, v := range vs[lo+1:] {
		last := &out[len(out)-1]
		if v.Loc.Addr == last.Loc.Addr && v.Day() == last.Day() &&
			math.Abs(last.Start+last.Dur-v.Start) < 1e-9 {
			last.Dur += v.Dur
			continue
		}
		out = append(out, v)
	}
	return out
}

// poisson draws a Poisson variate with the given mean via inversion for
// small means and a normal approximation for large ones.
func poisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
