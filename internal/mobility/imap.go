package mobility

import (
	"math/rand"
	"sort"
)

// IMAPMoveEvents derives the §6.2.2 sensitivity workload: user mobility as
// observed from a single application's vantage (the UMass IMAP servers).
// The mail client polls at Poisson-distributed check times; each check
// observes the device's current attachment, and a mobility event is a
// change of observed address between consecutive checks.
//
// Note the deliberate difference from MoveEvents: short dwells between two
// checks are invisible, and a check during a brief cellular interlude makes
// that interlude look like the whole story — exactly how an
// application-level trace distorts device mobility. The paper found the two
// workloads' per-router update rates correlate at 0.88 despite this.
func IMAPMoveEvents(dt *DeviceTrace, checksPerHour float64, rng *rand.Rand) []MoveEvent {
	if checksPerHour <= 0 {
		return nil
	}
	var out []MoveEvent
	for ui := range dt.Users {
		u := &dt.Users[ui]
		if len(u.Visits) == 0 {
			continue
		}
		start := u.Visits[0].Start
		end := u.Visits[len(u.Visits)-1].Start + u.Visits[len(u.Visits)-1].Dur

		// Poisson process over the whole observation window.
		n := poisson(checksPerHour*(end-start), rng)
		times := make([]float64, n)
		for i := range times {
			times[i] = start + rng.Float64()*(end-start)
		}
		sort.Float64s(times)

		var havePrev bool
		var prev Location
		vi := 0
		for _, t := range times {
			for vi+1 < len(u.Visits) && u.Visits[vi].Start+u.Visits[vi].Dur <= t {
				vi++
			}
			cur := u.Visits[vi].Loc
			if havePrev && cur.Addr != prev.Addr {
				out = append(out, MoveEvent{
					User: u.ID,
					Day:  int(t / 24),
					From: prev,
					To:   cur,
				})
			}
			prev = cur
			havePrev = true
		}
	}
	return out
}
