package mobility

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
)

func fleetFixture(t *testing.T) (*asgraph.Graph, *bgp.PrefixTable, DeviceConfig) {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 60
	cfg.Stubs = 500
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultDeviceConfig()
	dcfg.Days = 4
	return g, pt, dcfg
}

// streamUser generates a user's full trace day by day through fresh state.
func streamUser(t *testing.T, f *FleetGen, user int) []Visit {
	t.Helper()
	var st UserState
	sc := NewDayScratch()
	var out []Visit
	for day := 0; day < f.Days(); day++ {
		out = f.Day(user, day, &st, out, sc)
	}
	return out
}

// TestFleetGenDeterministic: same (seed, user) streams byte-identical
// visits across independent generations, scratches, and interleavings.
func TestFleetGenDeterministic(t *testing.T) {
	g, pt, dcfg := fleetFixture(t)
	f, err := NewFleetGen(g, pt, dcfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range []int{0, 3, 17, 100000} {
		a := streamUser(t, f, user)
		b := streamUser(t, f, user)
		if len(a) != len(b) {
			t.Fatalf("user %d: %d vs %d visits across same-seed streams", user, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d visit %d diverged: %+v vs %+v", user, i, a[i], b[i])
			}
		}
	}
	// A different fleet seed must actually change the stream.
	f2, err := NewFleetGen(g, pt, dcfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	a, b := streamUser(t, f, 3), streamUser(t, f2, 3)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 9 and 10 generated identical traces for user 3")
	}
}

// TestFleetGenDayTiling: every generated day tiles [24d, 24d+24) with
// contiguous, positive-duration visits.
func TestFleetGenDayTiling(t *testing.T) {
	g, pt, dcfg := fleetFixture(t)
	f, err := NewFleetGen(g, pt, dcfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewDayScratch()
	for user := 0; user < 40; user++ {
		var st UserState
		for day := 0; day < f.Days(); day++ {
			vs := f.Day(user, day, &st, nil, sc)
			if len(vs) == 0 {
				t.Fatalf("user %d day %d has no visits", user, day)
			}
			base := float64(day) * 24
			at := base
			for i, v := range vs {
				if math.Abs(v.Start-at) > 1e-9 {
					t.Fatalf("user %d day %d visit %d starts %v, want %v (gap/overlap)", user, day, i, v.Start, at)
				}
				if v.Dur <= 0 {
					t.Fatalf("user %d day %d visit %d has non-positive duration %v", user, day, i, v.Dur)
				}
				at = v.Start + v.Dur
			}
			if math.Abs(at-(base+24)) > 1e-9 {
				t.Fatalf("user %d day %d ends at %v, want %v", user, day, at, base+24)
			}
		}
	}
}

// TestFleetGenArenaAppend: appending several users' days onto one shared
// buffer leaves each window identical to a standalone generation — the
// region-limited merge must never coalesce across user boundaries.
func TestFleetGenArenaAppend(t *testing.T) {
	g, pt, dcfg := fleetFixture(t)
	f, err := NewFleetGen(g, pt, dcfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewDayScratch()
	const users = 25
	var arena []Visit
	type window struct{ off, n int }
	var wins []window
	states := make([]UserState, users)
	for u := 0; u < users; u++ {
		off := len(arena)
		arena = f.Day(u, 0, &states[u], arena, sc)
		wins = append(wins, window{off, len(arena) - off})
	}
	for u := 0; u < users; u++ {
		var st UserState
		want := f.Day(u, 0, &st, nil, sc)
		got := arena[wins[u].off : wins[u].off+wins[u].n]
		if len(got) != len(want) {
			t.Fatalf("user %d window has %d visits, standalone %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d visit %d diverged in shared arena", u, i)
			}
		}
	}
}

// TestFleetGenHomeEvolves: over enough user-days DHCP turnover must change
// some home address, and the evolved address must persist into later days
// through UserState.
func TestFleetGenHomeEvolves(t *testing.T) {
	g, pt, dcfg := fleetFixture(t)
	dcfg.Days = 20
	dcfg.HomeDHCPDaily = 0.5 // force frequent turnover
	f, err := NewFleetGen(g, pt, dcfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewDayScratch()
	changed := false
	for user := 0; user < 5 && !changed; user++ {
		var st UserState
		var prev UserState
		for day := 0; day < f.Days(); day++ {
			_ = f.Day(user, day, &st, nil, sc)
			if day > 0 && st.homeAddr != prev.homeAddr {
				changed = true
			}
			prev = st
		}
	}
	if !changed {
		t.Fatal("no home address ever changed despite 50% daily DHCP turnover")
	}
}
