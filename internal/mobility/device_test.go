package mobility

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/stats"
)

func testWorld(t testing.TB) (*asgraph.Graph, *bgp.PrefixTable) {
	t.Helper()
	cfg := asgraph.DefaultSynthConfig()
	cfg.Tier2 = 80
	cfg.Stubs = 700
	g, err := asgraph.Synthesize(cfg, rand.New(rand.NewSource(101)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, pt
}

func genTrace(t testing.TB, users, days int, seed int64) *DeviceTrace {
	t.Helper()
	g, pt := testWorld(t)
	cfg := DefaultDeviceConfig()
	cfg.Users = users
	cfg.Days = days
	dt, err := GenerateDeviceTrace(g, pt, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func TestGenerateDeviceTraceShape(t *testing.T) {
	dt := genTrace(t, 50, 7, 1)
	if len(dt.Users) != 50 || dt.Days != 7 {
		t.Fatalf("trace shape: %d users, %d days", len(dt.Users), dt.Days)
	}
	for _, u := range dt.Users {
		if len(u.Visits) == 0 {
			t.Fatalf("user %d has no visits", u.ID)
		}
		prevEnd := 0.0
		for i, v := range u.Visits {
			if v.Dur <= 0 {
				t.Fatalf("user %d visit %d non-positive duration %v", u.ID, i, v.Dur)
			}
			if v.Start+1e-9 < prevEnd {
				t.Fatalf("user %d visit %d overlaps previous (%v < %v)", u.ID, i, v.Start, prevEnd)
			}
			prevEnd = v.Start + v.Dur
			// Visits must not cross day boundaries.
			if int(v.Start/24) != int((v.Start+v.Dur-1e-9)/24) {
				t.Fatalf("user %d visit %d crosses midnight: start=%v dur=%v", u.ID, i, v.Start, v.Dur)
			}
			// The address must belong to the AS's address block.
			if v.Loc.Prefix.Bits() != 24 || !v.Loc.Prefix.Contains(v.Loc.Addr) {
				t.Fatalf("user %d visit %d bad prefix %v for addr %v", u.ID, i, v.Loc.Prefix, v.Loc.Addr)
			}
		}
		// Total observed time is Days*24.
		total := 0.0
		for _, v := range u.Visits {
			total += v.Dur
		}
		if math.Abs(total-float64(dt.Days)*24) > 1e-6 {
			t.Fatalf("user %d covers %v hours, want %v", u.ID, total, float64(dt.Days)*24)
		}
	}
}

func TestGenerateDeviceTraceErrors(t *testing.T) {
	g, pt := testWorld(t)
	cfg := DefaultDeviceConfig()
	cfg.Users = 0
	if _, err := GenerateDeviceTrace(g, pt, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero users should fail")
	}
	cfg = DefaultDeviceConfig()
	cfg.EyeballsPerRegion = 100000
	if _, err := GenerateDeviceTrace(g, pt, cfg, rand.New(rand.NewSource(1))); err == nil {
		t.Error("oversized pools should fail")
	}
}

func TestDeviceTraceDeterminism(t *testing.T) {
	a := genTrace(t, 20, 5, 33)
	b := genTrace(t, 20, 5, 33)
	for i := range a.Users {
		if len(a.Users[i].Visits) != len(b.Users[i].Visits) {
			t.Fatalf("user %d visit count diverged", i)
		}
		for j := range a.Users[i].Visits {
			if a.Users[i].Visits[j] != b.Users[i].Visits[j] {
				t.Fatalf("user %d visit %d diverged", i, j)
			}
		}
	}
}

// TestCalibration checks the generator against the paper's NomadLog
// aggregates with tolerant bands: median distinct ASes/prefixes/IPs per day
// of 2/2/3, median ~1 AS and ~3 IP transitions, a >10-IPs/day tail above
// 15%, and a dominant AS holding most of the day.
func TestCalibration(t *testing.T) {
	dt := genTrace(t, 372, 28, 7)
	avgs := dt.PerUserDailyAverages()
	if len(avgs) != 372 {
		t.Fatalf("averages for %d users", len(avgs))
	}
	var ips, prefixes, ases, ipTrans, asTrans []float64
	for _, a := range avgs {
		ips = append(ips, a.AvgDistinctIPs)
		prefixes = append(prefixes, a.AvgDistinctPrefixes)
		ases = append(ases, a.AvgDistinctASes)
		ipTrans = append(ipTrans, a.AvgIPTransitions)
		asTrans = append(asTrans, a.AvgASTransitions)
	}
	ipCDF, pfxCDF, asCDF := stats.NewCDF(ips), stats.NewCDF(prefixes), stats.NewCDF(ases)
	itCDF, atCDF := stats.NewCDF(ipTrans), stats.NewCDF(asTrans)

	if m := asCDF.Median(); m < 1.5 || m > 3.0 {
		t.Errorf("median distinct ASes/day = %.2f, want ~2", m)
	}
	if m := pfxCDF.Median(); m < 1.5 || m > 3.5 {
		t.Errorf("median distinct prefixes/day = %.2f, want ~2", m)
	}
	if m := ipCDF.Median(); m < 2.0 || m > 4.5 {
		t.Errorf("median distinct IPs/day = %.2f, want ~3", m)
	}
	// >20% of users change over 10 IP addresses a day (finding 1).
	tail := 1 - ipCDF.At(10)
	if tail < 0.12 || tail > 0.40 {
		t.Errorf("P(avg distinct IPs > 10) = %.2f, want ~0.2", tail)
	}
	if m := atCDF.Median(); m < 0.5 || m > 3.0 {
		t.Errorf("median AS transitions/day = %.2f, want ~1-2", m)
	}
	if m := itCDF.Median(); m < 2.0 || m > 5.0 {
		t.Errorf("median IP transitions/day = %.2f, want ~3", m)
	}
	// AS-transition extremes: min well below 1, max in the tens.
	if lo := atCDF.Min(); lo > 0.6 {
		t.Errorf("min AS transitions/day = %.2f, want <= 0.6", lo)
	}
	if hi := atCDF.Max(); hi < 8 || hi > 80 {
		t.Errorf("max AS transitions/day = %.2f, want tens", hi)
	}
	t.Logf("distinct/day medians: AS=%.1f prefix=%.1f IP=%.1f; transitions: AS=%.1f IP=%.1f; IP>10 tail=%.2f",
		asCDF.Median(), pfxCDF.Median(), ipCDF.Median(), atCDF.Median(), itCDF.Median(), tail)
}

func TestDominantFractions(t *testing.T) {
	dt := genTrace(t, 150, 14, 9)
	ip, prefix, as := dt.DominantFractions()
	if len(ip) == 0 || len(ip) != len(prefix) || len(ip) != len(as) {
		t.Fatalf("sample sizes %d/%d/%d", len(ip), len(prefix), len(as))
	}
	ipCDF, asCDF := stats.NewCDF(ip), stats.NewCDF(as)
	// Dominant AS dwell must dominate dominant IP dwell (an AS aggregates
	// several addresses), and both should be substantial (paper: ~70% of
	// the day at the dominant IP, ~85% at the dominant AS).
	if ipCDF.Median() < 0.5 || ipCDF.Median() > 0.95 {
		t.Errorf("median dominant-IP fraction = %.2f, want ~0.7", ipCDF.Median())
	}
	if asCDF.Median() < ipCDF.Median() {
		t.Errorf("dominant AS fraction %.2f below dominant IP fraction %.2f", asCDF.Median(), ipCDF.Median())
	}
	if asCDF.Median() < 0.65 {
		t.Errorf("median dominant-AS fraction = %.2f, want ~0.85", asCDF.Median())
	}
	for _, f := range as {
		if f <= 0 || f > 1+1e-9 {
			t.Fatalf("fraction out of range: %v", f)
		}
	}
	t.Logf("dominant medians: IP=%.2f AS=%.2f", ipCDF.Median(), asCDF.Median())
}

func TestMoveEvents(t *testing.T) {
	dt := genTrace(t, 40, 7, 5)
	evs := dt.MoveEvents()
	if len(evs) == 0 {
		t.Fatal("no mobility events")
	}
	for _, e := range evs {
		if e.From.Addr == e.To.Addr {
			t.Fatal("event with identical endpoints")
		}
		if e.Day < 0 || e.Day >= dt.Days {
			t.Fatalf("event day %d out of range", e.Day)
		}
	}
	// Cross-check one user's event count against per-day transition sums.
	u := &dt.Users[0]
	want := 0
	for d := 0; d < dt.Days; d++ {
		want += u.DayStats(d).IPTransitions
	}
	got := 0
	for _, e := range evs {
		if e.User == u.ID {
			got++
		}
	}
	if got != want {
		t.Fatalf("user 0: %d events vs %d transitions", got, want)
	}
}

func TestDayStatsEmptyDay(t *testing.T) {
	ut := &UserTrace{ID: 1}
	s := ut.DayStats(0)
	if s.DistinctIPs != 0 || s.DominantAS != -1 {
		t.Fatalf("empty day stats: %+v", s)
	}
}

func TestDominantDisplacements(t *testing.T) {
	dt := genTrace(t, 60, 7, 13)
	pairs := dt.DominantDisplacements()
	if len(pairs) == 0 {
		t.Fatal("expected displacement pairs")
	}
	for _, p := range pairs {
		if p.VisitedAS == p.DominantAS {
			t.Fatal("pair visiting the dominant AS")
		}
		if p.DwellFrac <= 0 || p.DwellFrac >= 1 {
			t.Fatalf("dwell fraction %v out of range", p.DwellFrac)
		}
	}
	// The paper's finding: the median user spends around 25% of a day away
	// from the dominant AS. Equivalent check: mean total away-fraction.
	_, _, asFracs := dt.DominantFractions()
	away := 0.0
	for _, f := range asFracs {
		away += 1 - f
	}
	away /= float64(len(asFracs))
	if away < 0.05 || away > 0.45 {
		t.Errorf("mean away-from-dominant-AS fraction = %.2f, want ~0.15-0.3", away)
	}
	t.Logf("mean away fraction = %.2f", away)
}

func TestIMAPMoveEvents(t *testing.T) {
	dt := genTrace(t, 40, 7, 21)
	evs := IMAPMoveEvents(dt, 2.0, rand.New(rand.NewSource(2)))
	if len(evs) == 0 {
		t.Fatal("no IMAP events")
	}
	direct := dt.MoveEvents()
	// Application-level sampling must see no more transitions than the
	// device actually made.
	if len(evs) > len(direct) {
		t.Fatalf("IMAP events %d exceed device events %d", len(evs), len(direct))
	}
	for _, e := range evs {
		if e.From.Addr == e.To.Addr {
			t.Fatal("no-op IMAP event")
		}
	}
	if got := IMAPMoveEvents(dt, 0, rand.New(rand.NewSource(2))); got != nil {
		t.Fatal("zero check rate should yield nil")
	}
}

func TestNetTypeString(t *testing.T) {
	if WiFi.String() != "wifi" || Cellular.String() != "cellular" {
		t.Fatal("NetType names wrong")
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if poisson(0, rng) != 0 || poisson(-1, rng) != 0 {
		t.Fatal("non-positive mean should give 0")
	}
	// Sample means should track the parameter for both code paths.
	for _, mean := range []float64{2.5, 50} {
		sum := 0
		n := 4000
		for i := 0; i < n; i++ {
			sum += poisson(mean, rng)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > mean*0.1 {
			t.Errorf("poisson(%v) sample mean %v", mean, got)
		}
	}
}

func BenchmarkGenerateDeviceTrace(b *testing.B) {
	g, pt := testWorld(b)
	cfg := DefaultDeviceConfig()
	cfg.Users = 100
	cfg.Days = 7
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateDeviceTrace(g, pt, cfg, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}

// Property-style invariants of the day accounting, over many users/days:
// transitions never exceed visits minus one, distinct counts are ordered
// IP >= prefix >= AS, dwell fractions are proper, and AS dwell sums to 1.
func TestDayStatsInvariants(t *testing.T) {
	dt := genTrace(t, 60, 6, 31)
	for ui := range dt.Users {
		u := &dt.Users[ui]
		for d := 0; d < dt.Days; d++ {
			s := u.DayStats(d)
			if s.DistinctIPs == 0 {
				continue
			}
			if s.DistinctIPs < s.DistinctPrefixes || s.DistinctPrefixes < s.DistinctASes {
				t.Fatalf("user %d day %d: distinct ordering broken: %+v", u.ID, d, s)
			}
			if s.IPTransitions < s.PrefixTransitions || s.PrefixTransitions < s.ASTransitions {
				t.Fatalf("user %d day %d: transition ordering broken: %+v", u.ID, d, s)
			}
			if s.DominantIPFrac <= 0 || s.DominantIPFrac > 1+1e-9 ||
				s.DominantASFrac < s.DominantIPFrac-1e-9 {
				t.Fatalf("user %d day %d: dwell fractions broken: %+v", u.ID, d, s)
			}
			sum := 0.0
			for _, f := range s.ASDwell {
				sum += f
			}
			if sum < 0.999 || sum > 1.001 {
				t.Fatalf("user %d day %d: AS dwell sums to %v", u.ID, d, sum)
			}
			if _, ok := s.ASDwell[s.DominantAS]; !ok {
				t.Fatalf("user %d day %d: dominant AS missing from dwell map", u.ID, d)
			}
		}
	}
}

// IMAP sampling at an enormous check rate converges to the device-level
// event sequence (every transition observed).
func TestIMAPHighRateConvergence(t *testing.T) {
	dt := genTrace(t, 6, 2, 77)
	dense := IMAPMoveEvents(dt, 500, rand.New(rand.NewSource(4)))
	direct := dt.MoveEvents()
	// At 500 checks/hour nearly every dwell is sampled; allow a tiny gap
	// for sub-sample dwells.
	if float64(len(dense)) < 0.9*float64(len(direct)) {
		t.Fatalf("dense IMAP saw %d of %d events", len(dense), len(direct))
	}
}
