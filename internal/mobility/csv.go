package mobility

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"locind/internal/netaddr"
)

// WriteCSV serializes the trace in the NomadLog record schema of §4, one
// row per connectivity event:
//
//	device_id,time_hours,ip_addr,prefix,asn,net_type,dur_hours
func WriteCSV(w io.Writer, dt *DeviceTrace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "device_id,time_hours,ip_addr,prefix,asn,net_type,dur_hours"); err != nil {
		return err
	}
	for i := range dt.Users {
		u := &dt.Users[i]
		for _, v := range u.Visits {
			fmt.Fprintf(bw, "%d,%.4f,%s,%s,%d,%s,%.4f\n",
				u.ID, v.Start, v.Loc.Addr, v.Loc.Prefix, v.Loc.AS, v.Loc.Net, v.Dur)
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace produced by WriteCSV. Days is inferred from the
// latest visit.
func ReadCSV(r io.Reader) (*DeviceTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	dt := &DeviceTrace{}
	users := map[int]*UserTrace{}
	var order []int
	first := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "device_id,") {
				continue
			}
		}
		v, id, err := parseCSVLine(line)
		if err != nil {
			return nil, fmt.Errorf("mobility: line %d: %w", lineNo, err)
		}
		u := users[id]
		if u == nil {
			u = &UserTrace{ID: id}
			users[id] = u
			order = append(order, id)
		}
		u.Visits = append(u.Visits, v)
		if u.HomeAS == 0 && len(u.Visits) == 1 {
			u.HomeAS = v.Loc.AS
		}
		if day := v.Day() + 1; day > dt.Days {
			dt.Days = day
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, id := range order {
		dt.Users = append(dt.Users, *users[id])
	}
	return dt, nil
}

func parseCSVLine(line string) (Visit, int, error) {
	f := strings.Split(line, ",")
	if len(f) != 7 {
		return Visit{}, 0, fmt.Errorf("want 7 fields, have %d", len(f))
	}
	id, err := strconv.Atoi(f[0])
	if err != nil {
		return Visit{}, 0, fmt.Errorf("bad device_id %q", f[0])
	}
	start, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return Visit{}, 0, fmt.Errorf("bad time %q", f[1])
	}
	var v Visit
	v.Start = start
	if v.Loc.Addr, err = parseAddrField(f[2]); err != nil {
		return Visit{}, 0, err
	}
	if v.Loc.Prefix, err = parsePrefixField(f[3]); err != nil {
		return Visit{}, 0, err
	}
	asn, err := strconv.Atoi(f[4])
	if err != nil {
		return Visit{}, 0, fmt.Errorf("bad asn %q", f[4])
	}
	v.Loc.AS = asn
	switch f[5] {
	case "wifi":
		v.Loc.Net = WiFi
	case "cellular":
		v.Loc.Net = Cellular
	default:
		return Visit{}, 0, fmt.Errorf("bad net_type %q", f[5])
	}
	dur, err := strconv.ParseFloat(f[6], 64)
	if err != nil || dur <= 0 {
		return Visit{}, 0, fmt.Errorf("bad dur %q", f[6])
	}
	v.Dur = dur
	return v, id, nil
}

func parseAddrField(s string) (netaddr.Addr, error) {
	a, err := netaddr.ParseAddr(s)
	if err != nil {
		return 0, fmt.Errorf("bad ip_addr %q", s)
	}
	return a, nil
}

func parsePrefixField(s string) (netaddr.Prefix, error) {
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		return netaddr.Prefix{}, fmt.Errorf("bad prefix %q", s)
	}
	return p, nil
}
