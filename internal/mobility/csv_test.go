package mobility

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	dt := genTrace(t, 15, 3, 8)
	var buf strings.Builder
	if err := WriteCSV(&buf, dt); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Users) != len(dt.Users) || back.Days != dt.Days {
		t.Fatalf("shape: %d users %d days vs %d users %d days",
			len(back.Users), back.Days, len(dt.Users), dt.Days)
	}
	for i := range dt.Users {
		a, b := dt.Users[i], back.Users[i]
		if a.ID != b.ID || len(a.Visits) != len(b.Visits) {
			t.Fatalf("user %d shape diverged", i)
		}
		for j := range a.Visits {
			va, vb := a.Visits[j], b.Visits[j]
			if va.Loc != vb.Loc {
				t.Fatalf("user %d visit %d loc %+v vs %+v", i, j, va.Loc, vb.Loc)
			}
			if diff := va.Start - vb.Start; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("user %d visit %d start %v vs %v", i, j, va.Start, vb.Start)
			}
		}
	}
	// Derived statistics survive the round trip (within CSV precision).
	a1 := dt.PerUserDailyAverages()
	a2 := back.PerUserDailyAverages()
	for i := range a1 {
		if a1[i].AvgDistinctIPs != a2[i].AvgDistinctIPs {
			t.Fatalf("user %d distinct IPs %v vs %v", i, a1[i].AvgDistinctIPs, a2[i].AvgDistinctIPs)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"1,0.0,1.2.3.4,1.2.3.0/24,5,wifi",             // missing field
		"x,0.0,1.2.3.4,1.2.3.0/24,5,wifi,1.0",         // bad id
		"1,z,1.2.3.4,1.2.3.0/24,5,wifi,1.0",           // bad time
		"1,0.0,bogus,1.2.3.0/24,5,wifi,1.0",           // bad addr
		"1,0.0,1.2.3.4,nope,5,wifi,1.0",               // bad prefix
		"1,0.0,1.2.3.4,1.2.3.0/24,q,wifi,1.0",         // bad asn
		"1,0.0,1.2.3.4,1.2.3.0/24,5,carrier-pigeon,1", // bad net type
		"1,0.0,1.2.3.4,1.2.3.0/24,5,wifi,0",           // bad duration
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) should fail", c)
		}
	}
	// Header-only and empty inputs are fine.
	if dt, err := ReadCSV(strings.NewReader("device_id,time_hours,ip_addr,prefix,asn,net_type,dur_hours\n")); err != nil || len(dt.Users) != 0 {
		t.Error("header-only input should parse to empty trace")
	}
	if dt, err := ReadCSV(strings.NewReader("")); err != nil || len(dt.Users) != 0 {
		t.Error("empty input should parse to empty trace")
	}
}
