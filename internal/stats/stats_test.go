package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if sd := StdDev(xs); sd != 2 {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice moments should be 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Error("MinMax(nil) should return ErrEmpty")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("Pearson = %v %v, want 1", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEq(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson(nil, nil); err == nil {
		t.Error("empty should error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero variance should error")
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 20000)
	ys := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Errorf("independent normals correlate at %v", r)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if c.N() != 4 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Errorf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if c.Median() != 2 {
		t.Errorf("Median = %v, want 2 (nearest rank)", c.Median())
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFQuantileEdges(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30})
	if c.Quantile(0) != 10 || c.Quantile(1) != 30 {
		t.Errorf("edge quantiles wrong: %v %v", c.Quantile(0), c.Quantile(1))
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Error("empty CDF quantile should be NaN")
	}
	if !math.IsNaN(NewCDF(nil).Min()) || !math.IsNaN(NewCDF(nil).Max()) {
		t.Error("empty CDF extrema should be NaN")
	}
	if NewCDF(nil).At(1) != 0 {
		t.Error("empty CDF At should be 0")
	}
}

// Quantile and At must be approximate inverses on any sample.
func TestCDFQuantileAtInverse(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9} {
			x := c.Quantile(q)
			// At(Quantile(q)) must cover at least q of the mass.
			if c.At(x) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	c := NewCDF(xs)
	pts := c.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y <= pts[i-1].Y {
			t.Fatalf("points not monotone at %d: %+v", i, pts)
		}
	}
	if NewCDF(nil).Points(5) != nil {
		t.Error("empty Points should be nil")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-5, 0, 0.5, 1, 1.5, 2, 100}
	h := Histogram(xs, 0, 1, 3)
	// bins: [0,1) -> {-5 clamped, 0, 0.5}, [1,2) -> {1, 1.5}, [2,..) -> {2, 100 clamped}
	if h[0] != 3 || h[1] != 2 || h[2] != 2 {
		t.Errorf("Histogram = %v", h)
	}
	if got := Histogram(xs, 0, 0, 3); got[0] != 0 {
		t.Error("zero width should produce empty histogram")
	}
}

func TestHistogramDegenerateBins(t *testing.T) {
	// Zero and negative bin counts must yield an empty histogram, not panic.
	if got := Histogram([]float64{1, 2}, 0, 1, 0); len(got) != 0 {
		t.Errorf("bins=0: got %v", got)
	}
	if got := Histogram([]float64{1, 2}, 0, 1, -4); len(got) != 0 {
		t.Errorf("bins=-4: got %v", got)
	}
	// Negative width with real bins still returns zeroed counts.
	if got := Histogram([]float64{1, 2}, 0, -1, 3); len(got) != 3 || got[0] != 0 {
		t.Errorf("negative width: got %v", got)
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####....." {
		t.Errorf("Bar = %q", b)
	}
	if b := Bar(20, 10, 4); b != "####" {
		t.Errorf("over-max Bar = %q", b)
	}
	if b := Bar(-1, 10, 4); b != "...." {
		t.Errorf("negative Bar = %q", b)
	}
	if Bar(1, 0, 4) != "" {
		t.Error("zero max should give empty bar")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 0, 100)
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if s.P50 != 50 || s.P90 != 90 || s.P99 != 99 {
		t.Errorf("Summary quantiles wrong: %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestCDFTable(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	out := c.Table("widget", []float64{0.5, 0.9})
	if out == "" {
		t.Fatal("Table should render")
	}
}
