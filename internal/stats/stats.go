// Package stats provides the small set of statistics used throughout the
// evaluation: empirical CDFs, quantiles, moments, Pearson correlation, and
// fixed-width text rendering of distributions for experiment output.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (dividing by n, not n-1),
// or 0 for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest elements of xs.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Pearson returns the Pearson correlation coefficient of paired samples. It
// returns an error if the slices differ in length, are empty, or either has
// zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input slice is copied.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples not exceeding x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) using the nearest-rank
// method, matching how one reads values off the paper's CDF plots.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return c.sorted[i]
}

// Median returns the 0.5 quantile.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Min and Max return the sample extrema (NaN when empty).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Max returns the largest sample (NaN when empty).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting or tabulating the CDF.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * len(c.sorted) / n
		if idx > len(c.sorted) {
			idx = len(c.sorted)
		}
		x := c.sorted[idx-1]
		out = append(out, Point{X: x, Y: float64(idx) / float64(len(c.sorted))})
	}
	return out
}

// Point is a single (x, y) sample of a distribution curve.
type Point struct{ X, Y float64 }

// Table renders the CDF at the given quantiles as an aligned two-column
// table, for experiment logs.
func (c *CDF) Table(label string, quantiles []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s\n", label, "value")
	for _, q := range quantiles {
		fmt.Fprintf(&b, "  p%-25.0f %10.4g\n", q*100, c.Quantile(q))
	}
	return b.String()
}

// Histogram counts samples into w-wide bins starting at lo. Samples below lo
// fall into bin 0; samples at or above lo+w*len(counts) fall into the last
// bin. A non-positive bin count yields an empty histogram; a non-positive
// width yields zeroed counts.
func Histogram(xs []float64, lo, w float64, bins int) []int {
	if bins <= 0 {
		return nil
	}
	counts := make([]int, bins)
	if w <= 0 {
		return counts
	}
	for _, x := range xs {
		i := int(math.Floor((x - lo) / w))
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		counts[i]++
	}
	return counts
}

// Bar renders a fixed-width ASCII bar for value v on a [0, max] scale, used
// for the per-router bar charts (Figures 8, 11b, 11c, 12).
func Bar(v, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	n := int(math.Round(v / max * float64(width)))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Summary holds the standard five-number-plus-moments description of a
// sample, used when recording paper-vs-measured comparisons.
type Summary struct {
	N             int
	Min, Max      float64
	Mean, StdDev  float64
	P25, P50, P75 float64
	P90, P95, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	c := NewCDF(xs)
	return Summary{
		N:      len(xs),
		Min:    c.Min(),
		Max:    c.Max(),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		P25:    c.Quantile(0.25),
		P50:    c.Quantile(0.50),
		P75:    c.Quantile(0.75),
		P90:    c.Quantile(0.90),
		P95:    c.Quantile(0.95),
		P99:    c.Quantile(0.99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g mean=%.4g p90=%.4g max=%.4g sd=%.4g",
		s.N, s.Min, s.P50, s.Mean, s.P90, s.Max, s.StdDev)
}
