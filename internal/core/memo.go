package core

import (
	"sync"
	"sync/atomic"

	"locind/internal/bgp"
	"locind/internal/netaddr"
	"locind/internal/obs"
)

// Memo wraps a RouteLookup with a per-router addr → route cache. The
// evaluation replays the same address sets against the same FIB millions of
// times (every timeline event re-resolves its before/after sets), and the
// underlying LPM lookup is pure, so the first resolution of each address can
// serve all later ones — the same move as the Loc/ID mapping caches the
// literature analyzes for resolution-based architectures.
//
// Memo is safe for concurrent use; parallel workers sharing one router
// simply share its cache. A racing pair of first lookups both consult the
// underlying table and store the same value, so results never depend on
// scheduling. Because the lookup is pure, neither does eviction: a capped
// memo recomputes what it dropped and returns identical answers.
type Memo struct {
	r     RouteLookup
	cache atomic.Pointer[sync.Map] // netaddr.Addr → memoEntry
	limit int64                    // approximate entry cap; 0 = unbounded
	size  atomic.Int64             // entries stored in the current epoch

	// nil-safe obs handles; unobserved memos pay one predictable branch.
	hits, misses, evictions *obs.Counter
}

type memoEntry struct {
	rt bgp.Route
	ok bool
}

// MemoMetrics aggregates cache behaviour across every memo sharing it.
type MemoMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
}

// NewMemoMetrics registers the memo counter families on reg. A nil
// registry yields all-nil handles.
func NewMemoMetrics(reg *obs.Registry) *MemoMetrics {
	return &MemoMetrics{
		Hits:      reg.Counter("locind_memo_hits_total", "route memo cache hits"),
		Misses:    reg.Counter("locind_memo_misses_total", "route memo cache misses"),
		Evictions: reg.Counter("locind_memo_evictions_total", "route memo entries dropped by epoch flushes"),
	}
}

// NewMemo wraps r in a fresh unbounded, unobserved cache.
func NewMemo(r RouteLookup) *Memo { return NewMemoObserved(r, 0, nil) }

// NewMemoObserved wraps r with an approximate entry cap and obs counters.
// A limit of 0 means unbounded; when the cap is crossed the whole cache is
// flushed in one epoch swap (O(1), no per-entry bookkeeping) and the
// dropped entries are counted as evictions. ms may be nil.
func NewMemoObserved(r RouteLookup, limit int, ms *MemoMetrics) *Memo {
	m := &Memo{r: r, limit: int64(limit)}
	if ms != nil {
		m.hits, m.misses, m.evictions = ms.Hits, ms.Misses, ms.Evictions
	}
	m.cache.Store(&sync.Map{})
	return m
}

// Port returns the memoized output port (next-hop AS) for a.
func (m *Memo) Port(a netaddr.Addr) (int, bool) {
	rt, ok := m.RouteFor(a)
	if !ok {
		return -1, false
	}
	return rt.NextHop, true
}

// RouteFor returns the memoized selected route for a.
func (m *Memo) RouteFor(a netaddr.Addr) (bgp.Route, bool) {
	c := m.cache.Load()
	if e, hit := c.Load(a); hit {
		m.hits.Inc()
		ent := e.(memoEntry)
		return ent.rt, ent.ok
	}
	m.misses.Inc()
	rt, ok := m.r.RouteFor(a)
	c.Store(a, memoEntry{rt: rt, ok: ok})
	if m.limit > 0 && m.size.Add(1) > m.limit {
		// Epoch flush: swing the pointer to an empty map. Concurrent
		// stores racing into the old epoch are simply dropped — the
		// underlying lookup is pure, so nothing observable changes; the
		// cap and the eviction count are approximate by design.
		if m.cache.CompareAndSwap(c, &sync.Map{}) {
			m.evictions.Add(m.size.Swap(0))
		}
	}
	return rt, ok
}
