package core

import (
	"sync"
	"sync/atomic"

	"locind/internal/bgp"
	"locind/internal/netaddr"
	"locind/internal/obs"
)

// memoStripes fixes the stripe count. 64 stripes keep the worst-case
// contention at 1/64th of a single lock even on machines far wider than the
// fan-out internal/par produces, while the whole lock table still fits in a
// few cache lines of metadata.
const memoStripes = 64

// memoStripe is one lock-striped shard of the cache: an ordinary Go map
// under an RWMutex. Plain maps store memoEntry values inline, so the hot
// hit path is a read-lock plus one map probe with no interface boxing —
// the sync.Map formulation this replaces allocated an interface header per
// store and funneled every insert through one shared dirty map, which is
// exactly the contention the flat Fig11b parallel curve measured. The pad
// keeps adjacent stripes' mutexes off one another's cache lines.
type memoStripe struct {
	mu sync.RWMutex
	m  map[netaddr.Addr]memoEntry
	_  [24]byte
}

// Memo wraps a RouteLookup with a per-router addr → route cache. The
// evaluation replays the same address sets against the same FIB millions of
// times (every timeline event re-resolves its before/after sets), and the
// underlying LPM lookup is pure, so the first resolution of each address can
// serve all later ones — the same move as the Loc/ID mapping caches the
// literature analyzes for resolution-based architectures.
//
// Memo is safe for concurrent use; parallel workers sharing one router
// simply share its cache. A racing pair of first lookups both consult the
// underlying table and store the same value, so results never depend on
// scheduling. Because the lookup is pure, neither does eviction: a capped
// memo recomputes what it dropped and returns identical answers.
type Memo struct {
	r       RouteLookup
	stripes [memoStripes]memoStripe
	limit   int64        // approximate entry cap; 0 = unbounded
	size    atomic.Int64 // entries stored across all stripes

	// nil-safe obs handles; unobserved memos pay one predictable branch.
	hits, misses, evictions *obs.Counter
}

type memoEntry struct {
	rt bgp.Route
	ok bool
}

// MemoMetrics aggregates cache behaviour across every memo sharing it.
type MemoMetrics struct {
	Hits      *obs.Counter
	Misses    *obs.Counter
	Evictions *obs.Counter
}

// NewMemoMetrics registers the memo counter families on reg. A nil
// registry yields all-nil handles.
func NewMemoMetrics(reg *obs.Registry) *MemoMetrics {
	return &MemoMetrics{
		Hits:      reg.Counter("locind_memo_hits_total", "route memo cache hits"),
		Misses:    reg.Counter("locind_memo_misses_total", "route memo cache misses"),
		Evictions: reg.Counter("locind_memo_evictions_total", "route memo entries dropped by epoch flushes"),
	}
}

// NewMemo wraps r in a fresh unbounded, unobserved cache.
func NewMemo(r RouteLookup) *Memo { return NewMemoObserved(r, 0, nil) }

// NewMemoObserved wraps r with an approximate entry cap and obs counters.
// A limit of 0 means unbounded; when the cap is crossed the stripe that
// received the overflowing insert is flushed in one map swap (O(1) beyond
// the garbage it frees, no per-entry bookkeeping) and the dropped entries
// are counted as evictions. ms may be nil.
func NewMemoObserved(r RouteLookup, limit int, ms *MemoMetrics) *Memo {
	m := &Memo{r: r, limit: int64(limit)}
	if ms != nil {
		m.hits, m.misses, m.evictions = ms.Hits, ms.Misses, ms.Evictions
	}
	return m
}

// stripeOf maps an address onto its stripe with a Fibonacci hash: addresses
// are dense structured integers (AS index × host counter), so taking raw
// low bits would pile whole prefixes onto one stripe.
func (m *Memo) stripeOf(a netaddr.Addr) *memoStripe {
	return &m.stripes[(uint64(a)*0x9E3779B97F4A7C15)>>(64-6)]
}

// Port returns the memoized output port (next-hop AS) for a.
//
//lint:zeroalloc per hit once the stripe's entry map is warm
func (m *Memo) Port(a netaddr.Addr) (int, bool) {
	rt, ok := m.RouteFor(a)
	if !ok {
		return -1, false
	}
	return rt.NextHop, true
}

// RouteFor returns the memoized selected route for a.
//
//lint:zeroalloc per hit once the stripe's entry map is warm
func (m *Memo) RouteFor(a netaddr.Addr) (bgp.Route, bool) {
	s := m.stripeOf(a)
	s.mu.RLock()
	ent, hit := s.m[a]
	s.mu.RUnlock()
	if hit {
		m.hits.Inc()
		return ent.rt, ent.ok
	}
	m.misses.Inc()
	rt, ok := m.r.RouteFor(a)
	s.mu.Lock()
	if _, raced := s.m[a]; !raced {
		if s.m == nil {
			s.m = make(map[netaddr.Addr]memoEntry)
		}
		s.m[a] = memoEntry{rt: rt, ok: ok}
		if m.limit > 0 {
			m.size.Add(1)
		}
	}
	s.mu.Unlock()
	if m.limit > 0 && m.size.Load() > m.limit {
		// Epoch flush of the overflowing stripe: drop its map wholesale.
		// Concurrent lookups racing into the flushed stripe simply miss —
		// the underlying lookup is pure, so nothing observable changes;
		// the cap and the eviction count are approximate by design. The
		// global size counter (rather than a per-stripe one) is what makes
		// tiny caps behave: a cap of 4 must evict even when the working
		// set happens to spread across many stripes.
		s.mu.Lock()
		if n := int64(len(s.m)); n > 0 {
			s.m = nil
			m.size.Add(-n)
			m.evictions.Add(n)
		}
		s.mu.Unlock()
	}
	return rt, ok
}
