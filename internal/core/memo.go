package core

import (
	"sync"

	"locind/internal/bgp"
	"locind/internal/netaddr"
)

// Memo wraps a RouteLookup with a per-router addr → route cache. The
// evaluation replays the same address sets against the same FIB millions of
// times (every timeline event re-resolves its before/after sets), and the
// underlying LPM lookup is pure, so the first resolution of each address can
// serve all later ones — the same move as the Loc/ID mapping caches the
// literature analyzes for resolution-based architectures.
//
// Memo is safe for concurrent use; parallel workers sharing one router
// simply share its cache. A racing pair of first lookups both consult the
// underlying table and store the same value, so results never depend on
// scheduling.
type Memo struct {
	r     RouteLookup
	cache sync.Map // netaddr.Addr → memoEntry
}

type memoEntry struct {
	rt bgp.Route
	ok bool
}

// NewMemo wraps r in a fresh cache.
func NewMemo(r RouteLookup) *Memo { return &Memo{r: r} }

// Port returns the memoized output port (next-hop AS) for a.
func (m *Memo) Port(a netaddr.Addr) (int, bool) {
	rt, ok := m.RouteFor(a)
	if !ok {
		return -1, false
	}
	return rt.NextHop, true
}

// RouteFor returns the memoized selected route for a.
func (m *Memo) RouteFor(a netaddr.Addr) (bgp.Route, bool) {
	if e, hit := m.cache.Load(a); hit {
		ent := e.(memoEntry)
		return ent.rt, ent.ok
	}
	rt, ok := m.r.RouteFor(a)
	m.cache.Store(a, memoEntry{rt: rt, ok: ok})
	return rt, ok
}
