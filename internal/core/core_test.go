package core

import (
	"math/rand"
	"testing"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/mobility"
	"locind/internal/names"
	"locind/internal/netaddr"
)

// fakeRouter is a hand-built FIB for unit tests.
func fakeRouter(entries map[string]int) *bgp.FIB {
	f := &bgp.FIB{}
	for p, port := range entries {
		prefix := netaddr.MustParsePrefix(p)
		f.Insert(prefix, bgp.Route{Prefix: prefix, NextHop: port, ASPath: []int{port, 999}})
	}
	return f
}

// fakeRouterWithLens builds a FIB whose routes have chosen AS-path lengths.
func fakeRouterWithLens(entries map[string]struct {
	Port int
	Len  int
}) *bgp.FIB {
	f := &bgp.FIB{}
	for p, e := range entries {
		prefix := netaddr.MustParsePrefix(p)
		path := make([]int, e.Len+1)
		path[0] = e.Port
		f.Insert(prefix, bgp.Route{Prefix: prefix, NextHop: e.Port, ASPath: path})
	}
	return f
}

func TestDisplacedPaperExample(t *testing.T) {
	// Figure 2: /24 -> port 5, /16 -> port 3; moving 22.33.44.55 ->
	// 22.33.88.55 is a displacement.
	r := fakeRouter(map[string]int{
		"22.33.44.0/24": 5,
		"22.33.0.0/16":  3,
	})
	if !Displaced(r, netaddr.MustParseAddr("22.33.44.55"), netaddr.MustParseAddr("22.33.88.55")) {
		t.Fatal("paper example must displace")
	}
	// Movement within the /24 does not displace.
	if Displaced(r, netaddr.MustParseAddr("22.33.44.55"), netaddr.MustParseAddr("22.33.44.99")) {
		t.Fatal("intra-prefix move must not displace")
	}
	// Missing routes never displace.
	if Displaced(r, netaddr.MustParseAddr("99.0.0.1"), netaddr.MustParseAddr("22.33.44.1")) {
		t.Fatal("unrouted source must not displace")
	}
}

func TestUpdateStats(t *testing.T) {
	var s UpdateStats
	if s.Rate() != 0 {
		t.Fatal("empty rate should be 0")
	}
	s.Add(UpdateStats{Events: 4, Updates: 1})
	s.Add(UpdateStats{Events: 6, Updates: 2})
	if s.Events != 10 || s.Updates != 3 || s.Rate() != 0.3 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDeviceUpdateStats(t *testing.T) {
	r := fakeRouter(map[string]int{
		"10.0.0.0/16": 1,
		"20.0.0.0/16": 2,
		"30.0.0.0/16": 1, // same port as 10/16
	})
	mk := func(from, to string) mobility.MoveEvent {
		return mobility.MoveEvent{
			From: mobility.Location{Addr: netaddr.MustParseAddr(from)},
			To:   mobility.Location{Addr: netaddr.MustParseAddr(to)},
		}
	}
	evs := []mobility.MoveEvent{
		mk("10.0.0.1", "20.0.0.1"), // port 1 -> 2: update
		mk("20.0.0.1", "10.0.0.2"), // update
		mk("10.0.0.2", "30.0.0.1"), // port 1 -> 1: no update
		mk("10.0.0.2", "10.0.9.9"), // same prefix: no update
	}
	s := DeviceUpdateStats(r, evs)
	if s.Events != 4 || s.Updates != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPortSetAndBestPort(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 7, Len: 3},
		"20.0.0.0/16": {Port: 4, Len: 2},
		"30.0.0.0/16": {Port: 7, Len: 5},
	})
	addrs := []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"),
		netaddr.MustParseAddr("20.0.0.1"),
		netaddr.MustParseAddr("30.0.0.1"),
		netaddr.MustParseAddr("99.0.0.1"), // unrouted, skipped
	}
	ps := PortSet(r, addrs)
	if len(ps) != 2 || ps[0] != 4 || ps[1] != 7 {
		t.Fatalf("PortSet = %v", ps)
	}
	best, ok := BestPortOf(r, addrs)
	if !ok || best != 4 {
		t.Fatalf("BestPortOf = %d, %v (want shortest path via port 4)", best, ok)
	}
	if _, ok := BestPortOf(r, []netaddr.Addr{netaddr.MustParseAddr("99.0.0.1")}); ok {
		t.Fatal("unrouted set should have no best port")
	}
	if got := PortSet(r, nil); len(got) != 0 {
		t.Fatal("empty set should have no ports")
	}
}

func TestBestPortDeterministicTieBreak(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 9, Len: 2},
		"20.0.0.0/16": {Port: 3, Len: 2},
	})
	best, _ := BestPortOf(r, []netaddr.Addr{
		netaddr.MustParseAddr("10.0.0.1"),
		netaddr.MustParseAddr("20.0.0.1"),
	})
	if best != 3 {
		t.Fatalf("tie should break to lower port, got %d", best)
	}
}

func TestContentUpdated(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 1, Len: 2},
		"20.0.0.0/16": {Port: 2, Len: 3},
		"30.0.0.0/16": {Port: 3, Len: 4},
	})
	a10 := netaddr.MustParseAddr("10.0.0.1")
	a10b := netaddr.MustParseAddr("10.0.7.7")
	a20 := netaddr.MustParseAddr("20.0.0.1")
	a30 := netaddr.MustParseAddr("30.0.0.1")

	// Swapping a far address while the closest stays: flooding updates,
	// best-port does not — the paper's central content observation.
	before := []netaddr.Addr{a10, a20}
	after := []netaddr.Addr{a10, a30}
	if ContentUpdated(r, before, after, BestPort) {
		t.Fatal("best port unchanged, must not update")
	}
	if !ContentUpdated(r, before, after, ControlledFlooding) {
		t.Fatal("port set changed, flooding must update")
	}
	// Intra-AS address rotation changes neither.
	if ContentUpdated(r, []netaddr.Addr{a10}, []netaddr.Addr{a10b}, ControlledFlooding) {
		t.Fatal("same-port rotation must not update flooding")
	}
	// Losing the closest address flips the best port.
	if !ContentUpdated(r, before, []netaddr.Addr{a20}, BestPort) {
		t.Fatal("losing the best address must update best-port")
	}
}

func TestContentUpdatedPanicsOnStateful(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("UnionFlooding via ContentUpdated should panic")
		}
	}()
	r := fakeRouter(map[string]int{"10.0.0.0/16": 1})
	ContentUpdated(r, nil, nil, UnionFlooding)
}

func TestContentUpdateStatsUnionFlooding(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 1, Len: 2},
		"20.0.0.0/16": {Port: 2, Len: 3},
	})
	a10 := netaddr.MustParseAddr("10.0.0.1")
	a10b := netaddr.MustParseAddr("10.0.0.2")
	a20 := netaddr.MustParseAddr("20.0.0.1")
	tl := &cdn.Timeline{
		Site:    cdn.Site{Name: "d.com"},
		Hours:   5,
		Initial: []netaddr.Addr{a10},
		Events: []cdn.Event{
			{Hour: 1, Removed: []netaddr.Addr{a10}, Added: []netaddr.Addr{a20}},  // new port 2: update
			{Hour: 2, Removed: []netaddr.Addr{a20}, Added: []netaddr.Addr{a10b}}, // port 1 already seen: no update
			{Hour: 3, Removed: []netaddr.Addr{a10b}, Added: []netaddr.Addr{a20}}, // port 2 already seen: no update
		},
	}
	s := ContentUpdateStats(r, tl, UnionFlooding)
	if s.Events != 3 || s.Updates != 1 {
		t.Fatalf("union stats = %+v", s)
	}
	// Controlled flooding updates on every flip; union never after seeing
	// both — §3.3.3's point.
	cf := ContentUpdateStats(r, tl, ControlledFlooding)
	if cf.Updates != 3 {
		t.Fatalf("flooding stats = %+v", cf)
	}
	if cf.Updates <= s.Updates {
		// (also implied by the explicit numbers above)
		t.Fatal("union flooding must not exceed controlled flooding updates")
	}
}

func TestStrategyString(t *testing.T) {
	if BestPort.String() != "best-port" || ControlledFlooding.String() != "controlled-flooding" ||
		UnionFlooding.String() != "union-flooding" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy should render")
	}
	if Indirection.String() == "" || Resolution.String() == "" || NameRouting.String() == "" ||
		Architecture(9).String() != "unknown" {
		t.Fatal("architecture names wrong")
	}
}

func TestTablesAndAggregateability(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 2, Len: 2},
		"20.0.0.0/16": {Port: 5, Len: 3},
	})
	a10 := []netaddr.Addr{netaddr.MustParseAddr("10.0.0.1")}
	a20 := []netaddr.Addr{netaddr.MustParseAddr("20.0.0.1")}
	both := []netaddr.Addr{a10[0], a20[0]}
	sets := map[names.Name][]netaddr.Addr{
		"yahoo.com":        a10,
		"travel.yahoo.com": a10,                                 // same port: subsumed
		"sports.yahoo.com": a20,                                 // different port: kept
		"cnn.com":          both,                                // best = port 2 (shorter)
		"ghost.com":        {netaddr.MustParseAddr("99.0.0.1")}, // unrouted: dropped
	}
	table := BestPortTable(r, sets)
	if len(table) != 4 {
		t.Fatalf("table = %v", table)
	}
	if table["cnn.com"] != 2 {
		t.Fatalf("cnn.com best port = %d", table["cnn.com"])
	}
	agg := AggregateabilityBestPort(r, sets)
	if agg != 4.0/3.0 {
		t.Fatalf("aggregateability = %v, want 4/3", agg)
	}
	flood := FloodPortTable(r, sets)
	if flood["cnn.com"] != "2,5" {
		t.Fatalf("flood table cnn.com = %q", flood["cnn.com"])
	}
	if AggregateabilityFlooding(r, sets) <= 0 {
		t.Fatal("flooding aggregateability must be positive")
	}
}

func TestBackOfEnvelope(t *testing.T) {
	// §6.2.2: 2B devices × 3/day × 3% ≈ 2.08K/sec.
	got := UpdateLoadPerSec(2e9, 3, 0.03)
	if got < 2000 || got > 2200 {
		t.Fatalf("device update load = %v, want ~2083", got)
	}
	// 2B × 7/day × 3% ≈ 4.86K/sec.
	got = UpdateLoadPerSec(2e9, 7, 0.03)
	if got < 4600 || got > 5000 {
		t.Fatalf("mean-user load = %v, want ~4861", got)
	}
	// §7.3: 1B names × 2/day × 0.5% ≈ 115/sec ("at most 100 updates/sec"
	// order of magnitude).
	got = UpdateLoadPerSec(1e9, 2, 0.005)
	if got < 100 || got > 130 {
		t.Fatalf("content update load = %v, want ~116", got)
	}
	// §6.2.2: 3% update rate × 30% away ≈ 1% extra FIB entries.
	if f := ExtraFIBFraction(0.03, 0.3); f < 0.008 || f > 0.01 {
		t.Fatalf("extra FIB fraction = %v, want ~0.009", f)
	}
}

// TestEvaluateDeviceArchitecture runs the three architectures end to end on
// a small synthesized world and checks the qualitative ordering the paper
// reports: addressing-assisted approaches pay O(1) updates but indirection
// pays stretch; name-based routing pays multi-router updates.
func TestEvaluateDeviceArchitecture(t *testing.T) {
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 60
	acfg.Stubs = 500
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := bgp.BuildCollectors(g, pt, bgp.RouteViewsSpecs(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Users = 60
	dcfg.Days = 7
	dt, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	events := dt.MoveEvents()
	pairs := dt.DominantDisplacements()

	ind := EvaluateDeviceArchitecture(Indirection, g, cols, events, pairs)
	res := EvaluateDeviceArchitecture(Resolution, g, cols, events, pairs)
	nbr := EvaluateDeviceArchitecture(NameRouting, g, cols, events, pairs)

	if ind.UpdatesPerEvent != 1 || res.UpdatesPerEvent != 1 {
		t.Fatal("addressing-assisted architectures must cost 1 update per event")
	}
	if ind.StretchASHops < 1 {
		t.Fatalf("indirection stretch = %v AS hops, want >= 1", ind.StretchASHops)
	}
	if res.StretchASHops != 0 || nbr.StretchASHops != 0 {
		t.Fatal("resolution and name routing add no data-path stretch")
	}
	if len(nbr.RouterUpdateRate) != len(cols) {
		t.Fatal("per-router rates missing")
	}
	if nbr.UpdatesPerEvent <= 0 {
		t.Fatal("name routing must update some routers")
	}
	if nbr.ExtraFIBFraction <= 0 || nbr.ExtraFIBFraction > 0.2 {
		t.Fatalf("extra FIB fraction = %v", nbr.ExtraFIBFraction)
	}
	t.Logf("indirection stretch=%.2f hops; name-routing sum-rate=%.3f extraFIB=%.4f",
		ind.StretchASHops, nbr.UpdatesPerEvent, nbr.ExtraFIBFraction)
}

func TestIndirectionStretchHopsEmpty(t *testing.T) {
	g := asgraph.NewGraph(3)
	if got := IndirectionStretchHops(g, nil); len(got) != 0 {
		t.Fatal("no pairs should yield no hops")
	}
}
