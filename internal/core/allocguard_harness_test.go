package core

import (
	"testing"

	"locind/internal/cdn"
	"locind/internal/netaddr"
)

// guardTimeline mirrors the cdn test helper: a two-address set where every
// event retires the previously added address and introduces a fresh one.
func guardTimeline(events int) cdn.Timeline {
	tl := cdn.Timeline{Hours: events + 2, Initial: []netaddr.Addr{10, 20}}
	for i := 0; i < events; i++ {
		ev := cdn.Event{Hour: i + 1, Added: []netaddr.Addr{netaddr.Addr(1000 + i)}}
		if i == 0 {
			ev.Removed = []netaddr.Addr{10}
		} else {
			ev.Removed = []netaddr.Addr{netaddr.Addr(1000 + i - 1)}
		}
		tl.Events = append(tl.Events, ev)
	}
	return tl
}

// guardRouter covers every guardTimeline address with a default route plus
// one more-specific, so best-port answers and displacement checks both
// exercise real FIB lookups.
func guardRouter() RouteLookup {
	return fakeRouter(map[string]int{
		"0.0.0.0/0": 3,
		"0.0.0.0/8": 5,
	})
}

// allocGuardHarness maps each //lint:zeroalloc symbol in this package to
// its measurement, consumed by the generated TestAllocGuard. The fused
// replays allocate fixed per-call scratch, so their measurements are
// differential (large minus small workload); the Memo hit path after
// warm-up must be absolutely allocation-free.
func allocGuardHarness() map[string]func(t *testing.T) float64 {
	return map[string]func(t *testing.T) float64{
		"ContentUpdateStatsFused": func(t *testing.T) float64 {
			r := guardRouter()
			small, large := guardTimeline(16), guardTimeline(512)
			fusedAllocs := func(tl *cdn.Timeline) float64 {
				return testing.AllocsPerRun(10, func() {
					if s := ContentUpdateStatsFused(r, tl); s.BestPort.Events != len(tl.Events) {
						t.Fatalf("fused replay saw %d events, want %d", s.BestPort.Events, len(tl.Events))
					}
				})
			}
			return fusedAllocs(&large) - fusedAllocs(&small)
		},
		"ContentUpdateStatsAllFused": func(t *testing.T) float64 {
			r := guardRouter()
			pool := func(events int) []cdn.Timeline {
				tls := make([]cdn.Timeline, 8)
				for i := range tls {
					tls[i] = guardTimeline(events)
				}
				return tls
			}
			small, large := pool(16), pool(512)
			poolAllocs := func(tls []cdn.Timeline) float64 {
				return testing.AllocsPerRun(10, func() {
					if s := ContentUpdateStatsAllFused(r, tls); s.BestPort.Events == 0 {
						t.Fatal("pooled replay saw no events")
					}
				})
			}
			return poolAllocs(large) - poolAllocs(small)
		},
		"Memo.Port": func(t *testing.T) float64 {
			m := NewMemo(guardRouter())
			addrs := []netaddr.Addr{10, 20, 1000, 2000, 3000}
			for _, a := range addrs {
				m.Port(a) // warm the stripes
			}
			return testing.AllocsPerRun(100, func() {
				for _, a := range addrs {
					if _, ok := m.Port(a); !ok {
						t.Fatalf("no port for %v", a)
					}
				}
			})
		},
		"Memo.RouteFor": func(t *testing.T) float64 {
			m := NewMemo(guardRouter())
			addrs := []netaddr.Addr{10, 20, 1000, 2000, 3000}
			for _, a := range addrs {
				m.RouteFor(a) // warm the stripes
			}
			return testing.AllocsPerRun(100, func() {
				for _, a := range addrs {
					if _, ok := m.RouteFor(a); !ok {
						t.Fatalf("no route for %v", a)
					}
				}
			})
		},
	}
}
