package core

import (
	"testing"

	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/netaddr"
)

// fuzzTable is a pure-function route table: the port and route for an
// address depend only on its bits, with deliberate holes (addresses with no
// route) so the ok=false paths are exercised.
type fuzzTable struct{}

func (fuzzTable) Port(a netaddr.Addr) (int, bool) {
	if a%5 == 0 {
		return 0, false
	}
	return int(a >> 29), true
}

func (fuzzTable) RouteFor(a netaddr.Addr) (bgp.Route, bool) {
	p, ok := fuzzTable{}.Port(a)
	if !ok {
		return bgp.Route{}, false
	}
	return bgp.Route{NextHop: p, ASPath: make([]int, 1+int(a>>13)%4)}, true
}

// FuzzTimelineWalk builds a content timeline from fuzz bytes and checks
// that the fused single-walk replay (ContentUpdateStatsFused) agrees
// strategy-for-strategy with three independent per-strategy replays — the
// equivalence the fused fast path promises.
//
// Encoding: up to four initial 4-byte addresses, then event chunks of one
// control byte (hour advance, removal and addition counts) followed by one
// pool-index byte per removal and four address octets per addition.
func FuzzTimelineWalk(f *testing.F) {
	f.Add([]byte{
		22, 33, 44, 55, 10, 0, 0, 1, 96, 0, 0, 2, 64, 0, 0, 3,
		0x15, 0, 200, 1, 2, 3, 0x2a, 1, 0,
	})
	f.Add([]byte{8, 0, 0, 1, 0x11, 9, 0, 0, 2, 0x05, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		i := 0
		var initial []netaddr.Addr
		for k := 0; k < 4 && i+4 <= len(data); k++ {
			initial = append(initial, netaddr.MakeAddr(data[i], data[i+1], data[i+2], data[i+3]))
			i += 4
		}
		pool := append([]netaddr.Addr(nil), initial...)
		hour := 0
		var events []cdn.Event
		for i < len(data) && len(events) < 64 {
			ctl := data[i]
			i++
			hour += int(ctl % 3)
			e := cdn.Event{Hour: hour}
			// Removals pick from the pool of seen addresses so they usually
			// hit; additions introduce fresh addresses into the pool.
			for k := 0; k < int(ctl>>2)%3 && i < len(data) && len(pool) > 0; k++ {
				e.Removed = append(e.Removed, pool[int(data[i])%len(pool)])
				i++
			}
			for k := 0; k < int(ctl>>4)%3 && i+4 <= len(data); k++ {
				a := netaddr.MakeAddr(data[i], data[i+1], data[i+2], data[i+3])
				i += 4
				e.Added = append(e.Added, a)
				pool = append(pool, a)
			}
			events = append(events, e)
		}
		tl := &cdn.Timeline{Hours: hour + 1, Initial: initial, Events: events}

		tbl := fuzzTable{}
		fused := ContentUpdateStatsFused(tbl, tl)
		want := StrategyStats{
			BestPort: ContentUpdateStats(tbl, tl, BestPort),
			Flooding: ContentUpdateStats(tbl, tl, ControlledFlooding),
			Union:    ContentUpdateStats(tbl, tl, UnionFlooding),
		}
		if fused != want {
			t.Fatalf("fused replay %+v diverges from per-strategy replays %+v over %d events",
				fused, want, len(events))
		}
	})
}
