package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"locind/internal/bgp"
	"locind/internal/netaddr"
)

// fibAndAddrs generates a random FIB over a few /16s plus probe address
// sets drawn mostly from covered space.
type fibAndAddrs struct {
	fib    *bgp.FIB
	before []netaddr.Addr
	after  []netaddr.Addr
}

// Generate implements quick.Generator.
func (fibAndAddrs) Generate(rng *rand.Rand, _ int) reflect.Value {
	fib := &bgp.FIB{}
	nPrefixes := 2 + rng.Intn(8)
	prefixes := make([]netaddr.Prefix, 0, nPrefixes)
	for i := 0; i < nPrefixes; i++ {
		p := netaddr.MakePrefix(netaddr.MakeAddr(byte(10+i), 0, 0, 0), 16)
		prefixes = append(prefixes, p)
		pathLen := 1 + rng.Intn(4)
		path := make([]int, pathLen+1)
		port := rng.Intn(5)
		path[0] = port
		fib.Insert(p, bgp.Route{Prefix: p, NextHop: port, ASPath: path})
	}
	draw := func() []netaddr.Addr {
		n := rng.Intn(6)
		out := make([]netaddr.Addr, 0, n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.85 {
				out = append(out, prefixes[rng.Intn(len(prefixes))].Nth(uint64(rng.Uint32())))
			} else {
				out = append(out, netaddr.MakeAddr(200, byte(rng.Intn(4)), 0, 1)) // unrouted
			}
		}
		return out
	}
	return reflect.ValueOf(fibAndAddrs{fib: fib, before: draw(), after: draw()})
}

// Property: the best port is always a member of the eligible port set; the
// port set is sorted and duplicate-free; empty/unrouted sets have no best.
func TestBestPortMembership(t *testing.T) {
	f := func(fa fibAndAddrs) bool {
		ports := PortSet(fa.fib, fa.before)
		for i := 1; i < len(ports); i++ {
			if ports[i] <= ports[i-1] {
				return false
			}
		}
		best, ok := BestPortOf(fa.fib, fa.before)
		if !ok {
			return len(ports) == 0
		}
		for _, p := range ports {
			if p == best {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: ContentUpdated is symmetric for controlled flooding (a set
// change is a set change in either direction), irreflexive for both
// strategies, and unaffected by intra-set address rotation within the same
// ports.
func TestContentUpdatedLaws(t *testing.T) {
	f := func(fa fibAndAddrs) bool {
		// Irreflexive.
		if ContentUpdated(fa.fib, fa.before, fa.before, BestPort) {
			return false
		}
		if ContentUpdated(fa.fib, fa.before, fa.before, ControlledFlooding) {
			return false
		}
		// Flooding symmetry.
		ab := ContentUpdated(fa.fib, fa.before, fa.after, ControlledFlooding)
		ba := ContentUpdated(fa.fib, fa.after, fa.before, ControlledFlooding)
		if ab != ba {
			return false
		}
		// Port-set equality implies no flooding update.
		if portSetKey(PortSet(fa.fib, fa.before)) == portSetKey(PortSet(fa.fib, fa.after)) && ab {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the displacement test is irreflexive and symmetric (ports
// either differ or they do not, regardless of direction).
func TestDisplacedLaws(t *testing.T) {
	f := func(fa fibAndAddrs) bool {
		if len(fa.before) == 0 || len(fa.after) == 0 {
			return true
		}
		a, b := fa.before[0], fa.after[0]
		if Displaced(fa.fib, a, a) {
			return false
		}
		return Displaced(fa.fib, a, b) == Displaced(fa.fib, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
