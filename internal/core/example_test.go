package core_test

import (
	"fmt"

	"locind/internal/bgp"
	"locind/internal/core"
	"locind/internal/netaddr"
)

// The §3.1 displacement test on the Figure 2 router.
func ExampleDisplaced() {
	fib := &bgp.FIB{}
	fib.Insert(netaddr.MustParsePrefix("22.33.44.0/24"), bgp.Route{NextHop: 5, ASPath: []int{5, 9}})
	fib.Insert(netaddr.MustParsePrefix("22.33.0.0/16"), bgp.Route{NextHop: 3, ASPath: []int{3, 9}})

	fmt.Println(core.Displaced(fib,
		netaddr.MustParseAddr("22.33.44.55"), netaddr.MustParseAddr("22.33.88.55")))
	fmt.Println(core.Displaced(fib,
		netaddr.MustParseAddr("22.33.44.55"), netaddr.MustParseAddr("22.33.44.99")))
	// Output:
	// true
	// false
}

// The §3.3.1 update-cost definitions: losing a far replica updates
// controlled flooding but not best-port.
func ExampleContentUpdated() {
	fib := &bgp.FIB{}
	fib.Insert(netaddr.MustParsePrefix("10.0.0.0/16"), bgp.Route{NextHop: 1, ASPath: []int{1, 9}})
	fib.Insert(netaddr.MustParsePrefix("20.0.0.0/16"), bgp.Route{NextHop: 2, ASPath: []int{2, 8, 9}})

	near := netaddr.MustParseAddr("10.0.0.1")
	far := netaddr.MustParseAddr("20.0.0.1")
	before := []netaddr.Addr{near, far}
	after := []netaddr.Addr{near}

	fmt.Println(core.ContentUpdated(fib, before, after, core.ControlledFlooding))
	fmt.Println(core.ContentUpdated(fib, before, after, core.BestPort))
	// Output:
	// true
	// false
}
