package core

import (
	"sort"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/iplane"
	"locind/internal/mobility"
)

// Architecture identifies one of the three puristic approaches of §2.
type Architecture uint8

// The three puristic architectures.
const (
	// Indirection routes all traffic through a home agent that tracks the
	// endpoint's current address (Mobile IP, GSM HLR, i3).
	Indirection Architecture = iota
	// Resolution resolves names to current addresses through an
	// extra-network service before communicating (DNS, GNS, LISP, HIP).
	Resolution
	// NameRouting routes directly on names at every router (TRIAD, ROFL,
	// NDN, SEATTLE).
	NameRouting
)

// String names the architecture.
func (a Architecture) String() string {
	switch a {
	case Indirection:
		return "indirection"
	case Resolution:
		return "name-resolution"
	case NameRouting:
		return "name-based-routing"
	}
	return "unknown"
}

// DeviceCosts is the §6 cost-benefit readout for one architecture over a
// device-mobility workload.
type DeviceCosts struct {
	Arch Architecture

	// UpdatesPerEvent is the expected number of updated entities per
	// mobility event: exactly 1 (the home agent or the resolution service)
	// for the addressing-assisted architectures; the expected number of
	// impacted routers for name-based routing.
	UpdatesPerEvent float64

	// RouterUpdateRate maps each evaluated router to the fraction of events
	// inducing an update there (name-based routing only).
	RouterUpdateRate map[string]float64

	// StretchASHops is the expected additive data-path stretch in AS hops
	// (indirection's triangle-routing penalty; zero for the others).
	StretchASHops float64

	// ExtraFIBFraction estimates the fraction of endpoints for which a
	// router holds an extra displaced-entry at any time (name-based
	// routing; §6.2.2's ≈1% back-of-the-envelope).
	ExtraFIBFraction float64
}

// EvaluateDeviceArchitecture computes the device-mobility costs of one
// architecture against the measured workload. collectors are the evaluated
// routers (used by NameRouting only); pairs and awayFrac feed the
// indirection stretch estimate.
func EvaluateDeviceArchitecture(
	arch Architecture,
	g *asgraph.Graph,
	collectors []*bgp.Collector,
	events []mobility.MoveEvent,
	pairs []mobility.DominantPair,
) DeviceCosts {
	out := DeviceCosts{Arch: arch}
	switch arch {
	case Indirection:
		out.UpdatesPerEvent = 1
		hops := IndirectionStretchHops(g, pairs)
		if len(hops) > 0 {
			sum := 0.0
			for _, h := range hops {
				sum += h
			}
			out.StretchASHops = sum / float64(len(hops))
		}
	case Resolution:
		out.UpdatesPerEvent = 1
	case NameRouting:
		out.RouterUpdateRate = map[string]float64{}
		// Expected updates per event across the evaluated routers is the
		// sum of per-router update rates.
		sum := 0.0
		for _, c := range collectors {
			rate := DeviceUpdateStats(c.FIB, events).Rate()
			out.RouterUpdateRate[c.Name] = rate
			sum += rate
		}
		if len(collectors) > 0 {
			out.UpdatesPerEvent = sum
			out.ExtraFIBFraction = ExtraFIBFraction(sum/float64(len(collectors)), awayFraction(pairs))
		}
	}
	return out
}

// awayFraction estimates the average fraction of a day endpoints spend away
// from their dominant AS, used by the displaced-entry estimate. Each
// DominantPair carries the dwell fraction of one non-dominant AS for one
// user-day, so the per-user-day away time is the per-pair mean scaled by
// the average number of pairs per user-day; we approximate the latter by 2
// (home/work/cellular days contribute two non-dominant ASes).
func awayFraction(pairs []mobility.DominantPair) float64 {
	if len(pairs) == 0 {
		return 0.3 // the paper's ballpark
	}
	sum := 0.0
	for _, p := range pairs {
		sum += p.DwellFrac
	}
	frac := sum / float64(len(pairs)) * 2
	if frac > 1 {
		frac = 1
	}
	return frac
}

// IndirectionStretchHops returns, for each dominant→visited displacement,
// the AS-hop distance between home (dominant) and current AS on the
// physical topology — the paper's Fig. 10 lower-bound technique. Pairs are
// weighted implicitly by appearing once per user-day.
func IndirectionStretchHops(g *asgraph.Graph, pairs []mobility.DominantPair) []float64 {
	// Group by dominant AS so each BFS is reused.
	byHome := map[int][]int{}
	for _, p := range pairs {
		byHome[p.DominantAS] = append(byHome[p.DominantAS], p.VisitedAS)
	}
	homes := make([]int, 0, len(byHome))
	for h := range byHome {
		homes = append(homes, h)
	}
	// Deterministic order.
	sort.Ints(homes)
	var out []float64
	for _, h := range homes {
		dist := g.ShortestUndirectedHops(h)
		for _, v := range byHome[h] {
			if d := dist[v]; d >= 0 {
				out = append(out, float64(d))
			}
		}
	}
	return out
}

// IndirectionStretchLatency predicts home→current one-way latencies with
// the iPlane substitute; like the paper, only a small fraction of pairs is
// answerable. It returns the answered latencies and the coverage fraction.
func IndirectionStretchLatency(p *iplane.Predictor, pairs []mobility.DominantPair) (lats []float64, coverage float64) {
	if len(pairs) == 0 {
		return nil, 0
	}
	for _, pr := range pairs {
		if lat, ok := p.Query(pr.DominantAS, pr.VisitedAS); ok && pr.DominantAS != pr.VisitedAS {
			lats = append(lats, lat)
		}
	}
	return lats, float64(len(lats)) / float64(len(pairs))
}

// Back-of-the-envelope calculators (§6.2.2 and §7.3).

// UpdateLoadPerSec converts a population of mobile principals, their mean
// mobility-event rate, and the per-event probability of inducing a router
// update into an absolute router update rate per second. The paper's
// example: 2e9 devices × 3 events/day × 3% ⇒ ~2.1K updates/sec.
func UpdateLoadPerSec(principals, eventsPerDay, updateFrac float64) float64 {
	return principals * eventsPerDay * updateFrac / 86400
}

// ExtraFIBFraction estimates the fraction of principals for which a router
// holds a displaced host-route at any instant: the probability an event
// displaces the principal w.r.t. the router times the fraction of time
// spent away from the dominant (aggregated) location. The paper's §6.2.2
// estimate: 3% × 30% ≈ 1%.
func ExtraFIBFraction(updateRate, awayFrac float64) float64 {
	return updateRate * awayFrac
}
