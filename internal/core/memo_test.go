package core

import (
	"sync"
	"testing"

	"locind/internal/cdn"
	"locind/internal/mobility"
	"locind/internal/netaddr"
	"locind/internal/obs"
)

func TestMemoMatchesUnderlying(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 7, Len: 3},
		"20.0.0.0/16": {Port: 4, Len: 2},
		"30.0.0.0/16": {Port: 7, Len: 5},
	})
	m := NewMemo(r)
	addrs := []string{"10.0.0.1", "20.0.0.1", "30.0.0.1", "99.0.0.1", "10.0.0.1"}
	// Two rounds so the second hits the cache.
	for round := 0; round < 2; round++ {
		for _, s := range addrs {
			a := netaddr.MustParseAddr(s)
			wp, wok := r.Port(a)
			gp, gok := m.Port(a)
			if wp != gp || wok != gok {
				t.Fatalf("round %d: Port(%s) = (%d,%v), want (%d,%v)", round, s, gp, gok, wp, wok)
			}
			wrt, wok2 := r.RouteFor(a)
			grt, gok2 := m.RouteFor(a)
			if wok2 != gok2 || wrt.NextHop != grt.NextHop || wrt.PathLen() != grt.PathLen() {
				t.Fatalf("round %d: RouteFor(%s) diverged", round, s)
			}
		}
	}
}

func TestMemoConcurrent(t *testing.T) {
	r := fakeRouter(map[string]int{
		"10.0.0.0/16": 1,
		"20.0.0.0/16": 2,
	})
	m := NewMemo(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if p, ok := m.Port(netaddr.MustParseAddr("10.0.0.1")); !ok || p != 1 {
					t.Errorf("Port = %d,%v", p, ok)
					return
				}
				if _, ok := m.Port(netaddr.MustParseAddr("99.0.0.1")); ok {
					t.Error("unrouted addr resolved")
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestMemoObserved(t *testing.T) {
	r := fakeRouter(map[string]int{
		"10.0.0.0/16": 1,
		"20.0.0.0/16": 2,
	})
	ms := NewMemoMetrics(obs.NewRegistry())
	m := NewMemoObserved(r, 0, ms)
	a := netaddr.MustParseAddr("10.0.0.1")
	m.Port(a)
	m.Port(a)
	m.Port(netaddr.MustParseAddr("20.0.0.1"))
	if ms.Misses.Value() != 2 || ms.Hits.Value() != 1 {
		t.Fatalf("hits=%d misses=%d", ms.Hits.Value(), ms.Misses.Value())
	}
	if ms.Evictions.Value() != 0 {
		t.Fatalf("unbounded memo evicted %d", ms.Evictions.Value())
	}
}

// A capped memo flushes whole epochs when it overflows, counts the drops,
// and — the lookup being pure — keeps answering exactly like an unbounded
// one.
func TestMemoCappedEvictsAndStaysCorrect(t *testing.T) {
	routes := map[string]int{}
	for i := 0; i < 8; i++ {
		routes[netaddr.MakeAddr(10, byte(i), 0, 0).String()+"/16"] = i + 1
	}
	r := fakeRouter(routes)
	ms := NewMemoMetrics(obs.NewRegistry())
	m := NewMemoObserved(r, 4, ms)
	for round := 0; round < 3; round++ {
		for i := 0; i < 8; i++ {
			a := netaddr.MakeAddr(10, byte(i), 0, 1)
			wp, wok := r.Port(a)
			gp, gok := m.Port(a)
			if wp != gp || wok != gok {
				t.Fatalf("round %d: Port(%s) = (%d,%v), want (%d,%v)", round, a, gp, gok, wp, wok)
			}
		}
	}
	if ms.Evictions.Value() == 0 {
		t.Fatal("8 distinct keys through a cap of 4 must have flushed")
	}
	if ms.Misses.Value() <= 8 {
		t.Fatalf("flushes must force recomputation; misses = %d", ms.Misses.Value())
	}
}

// The fused single-walk evaluation must count exactly what three separate
// strategy-at-a-time walks count, with and without memoization.
func TestFusedMatchesSeparateWalks(t *testing.T) {
	r := fakeRouterWithLens(map[string]struct {
		Port int
		Len  int
	}{
		"10.0.0.0/16": {Port: 1, Len: 2},
		"20.0.0.0/16": {Port: 2, Len: 3},
		"30.0.0.0/16": {Port: 3, Len: 4},
	})
	a10 := netaddr.MustParseAddr("10.0.0.1")
	a10b := netaddr.MustParseAddr("10.0.0.2")
	a20 := netaddr.MustParseAddr("20.0.0.1")
	a30 := netaddr.MustParseAddr("30.0.0.1")
	tls := []cdn.Timeline{
		{
			Site:    cdn.Site{Name: "a.com"},
			Hours:   6,
			Initial: []netaddr.Addr{a10},
			Events: []cdn.Event{
				{Hour: 1, Removed: []netaddr.Addr{a10}, Added: []netaddr.Addr{a20}},
				{Hour: 2, Removed: []netaddr.Addr{a20}, Added: []netaddr.Addr{a10b}},
				{Hour: 3, Added: []netaddr.Addr{a30}},
				{Hour: 4, Removed: []netaddr.Addr{a30}},
			},
		},
		{
			Site:    cdn.Site{Name: "b.com"},
			Hours:   4,
			Initial: []netaddr.Addr{a10, a20},
			Events: []cdn.Event{
				{Hour: 1, Removed: []netaddr.Addr{a20}, Added: []netaddr.Addr{a30}},
				{Hour: 2, Removed: []netaddr.Addr{a10}},
			},
		},
		{
			// No events at all: every strategy must report zero of each.
			Site:    cdn.Site{Name: "quiet.org"},
			Hours:   3,
			Initial: []netaddr.Addr{a10},
		},
	}
	for _, lookup := range []RouteLookup{r, NewMemo(r)} {
		fused := ContentUpdateStatsAllFused(lookup, tls)
		bp := ContentUpdateStatsAll(lookup, tls, BestPort)
		fl := ContentUpdateStatsAll(lookup, tls, ControlledFlooding)
		un := ContentUpdateStatsAll(lookup, tls, UnionFlooding)
		if fused.BestPort != bp {
			t.Fatalf("fused best-port %+v != separate %+v", fused.BestPort, bp)
		}
		if fused.Flooding != fl {
			t.Fatalf("fused flooding %+v != separate %+v", fused.Flooding, fl)
		}
		if fused.Union != un {
			t.Fatalf("fused union %+v != separate %+v", fused.Union, un)
		}
	}
}

// A memoized router must leave DeviceUpdateStats untouched.
func TestMemoDeviceStatsIdentical(t *testing.T) {
	r := fakeRouter(map[string]int{
		"10.0.0.0/16": 1,
		"20.0.0.0/16": 2,
		"30.0.0.0/16": 1,
	})
	mk := func(from, to string) mobility.MoveEvent {
		return mobility.MoveEvent{
			From: mobility.Location{Addr: netaddr.MustParseAddr(from)},
			To:   mobility.Location{Addr: netaddr.MustParseAddr(to)},
		}
	}
	evs := []mobility.MoveEvent{
		mk("10.0.0.1", "20.0.0.1"),
		mk("20.0.0.1", "10.0.0.2"),
		mk("10.0.0.2", "30.0.0.1"),
		mk("10.0.0.2", "10.0.9.9"),
	}
	raw := DeviceUpdateStats(r, evs)
	memo := DeviceUpdateStats(NewMemo(r), evs)
	if raw != memo {
		t.Fatalf("memoized stats %+v != raw %+v", memo, raw)
	}
}
