// Package core implements the paper's primary contribution: the
// quantitative methodology for comparing location-independent network
// architectures. It provides the displacement test of §3.1-3.2 (does a
// mobility event change a router's forwarding behaviour?), the multihomed
// update-cost definitions of §3.3.1 for best-port forwarding and controlled
// flooding (plus the union-of-past-addresses strategy sketched in §3.3.3),
// forwarding-table size and aggregateability accounting, and the per-
// architecture cost model used by the experiments.
package core

import (
	"slices"
	"sort"
	"strconv"
	"strings"

	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/mobility"
	"locind/internal/names"
	"locind/internal/netaddr"
)

// PortLookup is the slice of router behaviour the displacement test needs:
// the output port (next-hop AS) an address forwards to.
type PortLookup interface {
	Port(a netaddr.Addr) (int, bool)
}

// RouteLookup additionally exposes the selected route, which the best-port
// strategy needs to rank addresses by path length.
type RouteLookup interface {
	PortLookup
	RouteFor(a netaddr.Addr) (bgp.Route, bool)
}

// Displaced implements §3.1: a mobility event from one address to another
// displaces the endpoint with respect to a router iff the two addresses'
// longest-prefix matches point to different output ports. Events where
// either address has no route are not displacements (the paper's RIBs cover
// the full address space, so this arises only in truncated test tables).
func Displaced(r PortLookup, from, to netaddr.Addr) bool {
	p1, ok1 := r.Port(from)
	p2, ok2 := r.Port(to)
	return ok1 && ok2 && p1 != p2
}

// UpdateStats aggregates update-cost measurements at one router.
type UpdateStats struct {
	Events  int
	Updates int
}

// Rate returns Updates/Events (0 for an empty measurement).
func (s UpdateStats) Rate() float64 {
	if s.Events == 0 {
		return 0
	}
	return float64(s.Updates) / float64(s.Events)
}

// Add merges another measurement into s.
func (s *UpdateStats) Add(o UpdateStats) {
	s.Events += o.Events
	s.Updates += o.Updates
}

// DeviceUpdateStats measures the fraction of device mobility events that
// induce a forwarding update at router r — the quantity plotted per
// collector in Figure 8.
func DeviceUpdateStats(r PortLookup, events []mobility.MoveEvent) UpdateStats {
	var s UpdateStats
	for _, e := range events {
		s.Events++
		if Displaced(r, e.From.Addr, e.To.Addr) {
			s.Updates++
		}
	}
	return s
}

// Strategy selects among the §3.3.1 forwarding strategies.
type Strategy uint8

// Forwarding strategies.
const (
	// BestPort forwards on the single best output port; an update happens
	// when the best port changes.
	BestPort Strategy = iota
	// ControlledFlooding forwards on every eligible port; an update happens
	// when the set of eligible ports changes.
	ControlledFlooding
	// UnionFlooding is the §3.3.3 strategy: the router floods across the
	// ports of the union of all addresses ever observed, so an update
	// happens only when a never-before-seen port appears.
	UnionFlooding
)

// String names the strategy.
func (st Strategy) String() string {
	switch st {
	case BestPort:
		return "best-port"
	case ControlledFlooding:
		return "controlled-flooding"
	case UnionFlooding:
		return "union-flooding"
	}
	return "strategy-" + strconv.Itoa(int(st))
}

// PortSet returns the sorted set of eligible output ports for an address
// set: F(R, d, t) in the paper's notation. Addresses without a route are
// skipped.
func PortSet(r PortLookup, addrs []netaddr.Addr) []int {
	seen := map[int]bool{}
	for _, a := range addrs {
		if p, ok := r.Port(a); ok {
			seen[p] = true
		}
	}
	out := make([]int, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Ints(out)
	return out
}

// portSetKey canonicalizes a port set for use as a comparable table value.
func portSetKey(ports []int) string {
	var b strings.Builder
	for i, p := range ports {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(p))
	}
	return b.String()
}

// BestPortOf implements best(FIB(R, d, t)): the output port of the
// minimum-cost address, where cost is (AS-path length of the selected
// route, next-hop AS, address) — a deterministic "closest copy first"
// order. The boolean is false when no address has a route.
func BestPortOf(r RouteLookup, addrs []netaddr.Addr) (int, bool) {
	best := -1
	bestLen := 0
	var bestAddr netaddr.Addr
	found := false
	for _, a := range addrs {
		rt, ok := r.RouteFor(a)
		if !ok {
			continue
		}
		l := rt.PathLen()
		if !found ||
			l < bestLen ||
			(l == bestLen && rt.NextHop < best) ||
			(l == bestLen && rt.NextHop == best && a < bestAddr) {
			best, bestLen, bestAddr, found = rt.NextHop, l, a, true
		}
	}
	return best, found
}

// ContentUpdated implements the §3.3.1 update-cost definition for a single
// mobility event Addrs(d, t1) -> Addrs(d, t2) under the given strategy
// (UnionFlooding is stateful; use ContentUpdateStats for it).
func ContentUpdated(r RouteLookup, before, after []netaddr.Addr, st Strategy) bool {
	switch st {
	case BestPort:
		b1, ok1 := BestPortOf(r, before)
		b2, ok2 := BestPortOf(r, after)
		return ok1 && ok2 && b1 != b2
	case ControlledFlooding:
		s1 := PortSet(r, before)
		s2 := PortSet(r, after)
		return portSetKey(s1) != portSetKey(s2)
	default:
		panic("core: ContentUpdated does not support stateful strategies")
	}
}

// ContentUpdateStats replays a content timeline against router r and counts
// mobility events inducing an update — the per-collector quantity of
// Figures 11b/11c. For UnionFlooding it tracks the cumulative port set.
func ContentUpdateStats(r RouteLookup, tl *cdn.Timeline, st Strategy) UpdateStats {
	var s UpdateStats
	union := map[int]bool{}
	if st == UnionFlooding {
		for _, p := range PortSet(r, tl.Initial) {
			union[p] = true
		}
	}
	tl.Walk(func(_ cdn.Event, before, after []netaddr.Addr) {
		s.Events++
		switch st {
		case UnionFlooding:
			updated := false
			for _, p := range PortSet(r, after) {
				if !union[p] {
					union[p] = true
					updated = true
				}
			}
			if updated {
				s.Updates++
			}
		default:
			if ContentUpdated(r, before, after, st) {
				s.Updates++
			}
		}
	})
	return s
}

// ContentUpdateStatsAll pools ContentUpdateStats over many timelines.
func ContentUpdateStatsAll(r RouteLookup, tls []cdn.Timeline, st Strategy) UpdateStats {
	var s UpdateStats
	for i := range tls {
		s.Add(ContentUpdateStats(r, &tls[i], st))
	}
	return s
}

// StrategyStats bundles the per-strategy totals of one fused replay.
type StrategyStats struct {
	BestPort UpdateStats
	Flooding UpdateStats
	Union    UpdateStats
}

// Add merges another replay's totals into s.
func (s *StrategyStats) Add(o StrategyStats) {
	s.BestPort.Add(o.BestPort)
	s.Flooding.Add(o.Flooding)
	s.Union.Add(o.Union)
}

// fusedEval is the reusable scratch of the fused replay: two ping-pong
// sorted port sets and the cumulative union set, all plain int slices. The
// map-and-string-key formulation this replaces allocated a port-set map, an
// output slice, and a canonical string per event; the slice formulation
// allocates only while the buffers warm up, so a shard of timelines replays
// with a constant allocation count no matter how many events it holds.
type fusedEval struct {
	ports, prev, union []int
}

// appendPortSet writes the sorted, deduplicated eligible-port set of addrs
// into buf (reusing its capacity) — PortSet without the map and the fresh
// output slice.
func appendPortSet(r PortLookup, addrs []netaddr.Addr, buf []int) []int {
	buf = buf[:0]
	for _, a := range addrs {
		if p, ok := r.Port(a); ok {
			buf = append(buf, p)
		}
	}
	slices.Sort(buf)
	return slices.Compact(buf)
}

// unionAdd merges the sorted port set into the sorted cumulative union,
// reporting whether any never-before-seen port appeared (§3.3.3's update
// condition). Port sets are tiny, so the per-port binary search + insert is
// cheaper than any hashing.
func (f *fusedEval) unionAdd(ports []int) bool {
	grew := false
	for _, p := range ports {
		i, found := slices.BinarySearch(f.union, p)
		if found {
			continue
		}
		f.union = slices.Insert(f.union, i, p)
		grew = true
	}
	return grew
}

// replay is one timeline's fused walk; union state resets per timeline.
func (f *fusedEval) replay(r RouteLookup, tl *cdn.Timeline) StrategyStats {
	var out StrategyStats
	primed := false
	var prevBest int
	var prevBestOK bool
	f.union = f.union[:0]
	tl.Walk(func(_ cdn.Event, before, after []netaddr.Addr) {
		if !primed {
			f.prev = appendPortSet(r, before, f.prev)
			prevBest, prevBestOK = BestPortOf(r, before)
			f.union = append(f.union[:0], f.prev...)
			primed = true
		}
		f.ports = appendPortSet(r, after, f.ports)
		best, bestOK := BestPortOf(r, after)

		out.BestPort.Events++
		if prevBestOK && bestOK && prevBest != best {
			out.BestPort.Updates++
		}
		out.Flooding.Events++
		if !slices.Equal(f.ports, f.prev) {
			out.Flooding.Updates++
		}
		out.Union.Events++
		if f.unionAdd(f.ports) {
			out.Union.Updates++
		}
		f.ports, f.prev = f.prev, f.ports
		prevBest, prevBestOK = best, bestOK
	})
	return out
}

// ContentUpdateStatsFused replays a timeline once and evaluates all three
// §3.3.1 strategies in that single Timeline.Walk. Each event's after-set is
// resolved exactly once and carried into the next event as its before-set,
// so a timeline of n events costs n+1 set resolutions instead of the ~6n a
// strategy-at-a-time replay pays. The counts are identical to running
// ContentUpdateStats once per strategy.
//
//lint:zeroalloc per event after the evaluator's scratch warms up
func ContentUpdateStatsFused(r RouteLookup, tl *cdn.Timeline) StrategyStats {
	var f fusedEval
	return f.replay(r, tl)
}

// ContentUpdateStatsAllFused pools ContentUpdateStatsFused over many
// timelines (union state is per timeline, as in ContentUpdateStatsAll),
// sharing one scratch evaluator so the whole pool replays with a constant
// number of allocations.
//
//lint:zeroalloc per event; one shared scratch across the whole pool
func ContentUpdateStatsAllFused(r RouteLookup, tls []cdn.Timeline) StrategyStats {
	var f fusedEval
	var s StrategyStats
	for i := range tls {
		s.Add(f.replay(r, &tls[i]))
	}
	return s
}

// BestPortTable builds the complete name-forwarding table of §3.3.2 under
// best-port forwarding: every name mapped to its single best output port.
// Names whose addresses have no route are omitted.
func BestPortTable(r RouteLookup, sets map[names.Name][]netaddr.Addr) map[names.Name]int {
	out := make(map[names.Name]int, len(sets))
	for n, addrs := range sets {
		if p, ok := BestPortOf(r, addrs); ok {
			out[n] = p
		}
	}
	return out
}

// FloodPortTable builds the complete table under controlled flooding: every
// name mapped to its canonicalized eligible port set.
func FloodPortTable(r RouteLookup, sets map[names.Name][]netaddr.Addr) map[names.Name]string {
	out := make(map[names.Name]string, len(sets))
	for n, addrs := range sets {
		ports := PortSet(r, addrs)
		if len(ports) > 0 {
			out[n] = portSetKey(ports)
		}
	}
	return out
}

// AggregateabilityBestPort computes the §3.3.2 aggregateability metric (the
// ratio of complete to LPM table size) at router r under best-port
// forwarding — Figure 12's per-collector quantity.
func AggregateabilityBestPort(r RouteLookup, sets map[names.Name][]netaddr.Addr) float64 {
	return names.Aggregateability(BestPortTable(r, sets))
}

// AggregateabilityFlooding is the controlled-flooding analogue.
func AggregateabilityFlooding(r RouteLookup, sets map[names.Name][]netaddr.Addr) float64 {
	return names.Aggregateability(FloodPortTable(r, sets))
}
