// Package compact implements a landmark-based compact routing scheme in the
// style of Thorup–Zwick, the theory the paper leans on in §2.1 to frame the
// stretch-versus-forwarding-state trade-off ("with N flat identifiers, to
// be within 3x stretch of shortest-path, each router needs Ω(N) entries;
// for up to 5x stretch, Ω(√N)").
//
// Each router stores shortest-path entries for every landmark plus for its
// local cluster (the nodes strictly closer to it than to their own nearest
// landmark); any other destination routes via that destination's nearest
// landmark. With ~√n landmarks this yields ~√n-sized tables and worst-case
// multiplicative stretch 3, which the tests verify empirically against
// exact shortest paths.
package compact

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"locind/internal/topology"
)

// Scheme is a compact routing instance over a topology.
type Scheme struct {
	g         *topology.Graph
	landmarks []int
	// nearest[v] is v's closest landmark; distToLm[v] the distance to it.
	nearest  []int
	distToLm []int
	// cluster[r] holds the destinations r keeps exact entries for.
	cluster [][]int
	// lmDist[i][v] is the distance from landmark i to every node.
	lmDist [][]int
	hops   [][]int
}

// Address is the compact "name" of a node: which landmark it homes to and
// the node itself (the piece of routing state a packet must carry).
type Address struct {
	Node     int
	Landmark int
}

// New builds a scheme with the given landmark count (0 picks ⌈√n⌉),
// choosing landmarks uniformly at random.
func New(g *topology.Graph, numLandmarks int, rng *rand.Rand) (*Scheme, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("compact: empty topology")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("compact: topology must be connected")
	}
	if numLandmarks <= 0 {
		numLandmarks = int(math.Ceil(math.Sqrt(float64(n))))
	}
	if numLandmarks > n {
		numLandmarks = n
	}
	perm := rng.Perm(n)
	lms := append([]int(nil), perm[:numLandmarks]...)
	sort.Ints(lms)

	s := &Scheme{
		g:         g,
		landmarks: lms,
		nearest:   make([]int, n),
		distToLm:  make([]int, n),
		cluster:   make([][]int, n),
		lmDist:    make([][]int, len(lms)),
		hops:      g.AllPairsHops(),
	}
	for i, lm := range lms {
		s.lmDist[i], _ = g.BFS(lm)
	}
	for v := 0; v < n; v++ {
		bestLm, bestD := lms[0], s.lmDist[0][v]
		for i := 1; i < len(lms); i++ {
			if s.lmDist[i][v] < bestD {
				bestLm, bestD = lms[i], s.lmDist[i][v]
			}
		}
		s.nearest[v] = bestLm
		s.distToLm[v] = bestD
	}
	// Clusters: r keeps an exact entry for w iff dist(r, w) < dist(w,
	// nearest(w)) — Thorup–Zwick's condition, which bounds both table size
	// and stretch.
	for r := 0; r < n; r++ {
		for w := 0; w < n; w++ {
			if w == r {
				continue
			}
			if s.hops[r][w] < s.distToLm[w] {
				s.cluster[r] = append(s.cluster[r], w)
			}
		}
	}
	return s, nil
}

// Landmarks returns the landmark set.
func (s *Scheme) Landmarks() []int { return s.landmarks }

// AddressOf returns the compact address of node v.
func (s *Scheme) AddressOf(v int) Address {
	return Address{Node: v, Landmark: s.nearest[v]}
}

// TableSize returns the number of routing entries router r keeps: one per
// landmark plus its cluster.
func (s *Scheme) TableSize(r int) int {
	return len(s.landmarks) + len(s.cluster[r])
}

// MaxTableSize returns the largest table in the scheme.
func (s *Scheme) MaxTableSize() int {
	max := 0
	for r := 0; r < s.g.N(); r++ {
		if t := s.TableSize(r); t > max {
			max = t
		}
	}
	return max
}

// MeanTableSize returns the average table size.
func (s *Scheme) MeanTableSize() float64 {
	total := 0
	for r := 0; r < s.g.N(); r++ {
		total += s.TableSize(r)
	}
	return float64(total) / float64(s.g.N())
}

// Route returns the hop count of the compact route from src to the given
// address: direct when the destination is a landmark or in src's cluster,
// otherwise via the destination's landmark. An address naming a landmark
// this scheme does not know is a malformed packet, reported as an error.
func (s *Scheme) Route(src int, dst Address) (int, error) {
	if src == dst.Node {
		return 0, nil
	}
	for i, lm := range s.landmarks {
		if lm == dst.Node {
			return s.lmDist[i][src], nil
		}
	}
	for _, w := range s.cluster[src] {
		if w == dst.Node {
			return s.hops[src][dst.Node], nil
		}
	}
	// Via the landmark: src -> lm(dst) -> dst.
	li, err := s.landmarkIndex(dst.Landmark)
	if err != nil {
		return 0, err
	}
	return s.lmDist[li][src] + s.lmDist[li][dst.Node], nil
}

func (s *Scheme) landmarkIndex(lm int) (int, error) {
	for i, l := range s.landmarks {
		if l == lm {
			return i, nil
		}
	}
	return 0, fmt.Errorf("compact: address with unknown landmark %d", lm)
}

// Stretch returns the multiplicative stretch of the compact route from src
// to dst (1.0 = shortest path). Adjacent-or-same pairs return 1.
func (s *Scheme) Stretch(src, dst int) (float64, error) {
	direct := s.hops[src][dst]
	if direct == 0 {
		return 1, nil
	}
	route, err := s.Route(src, s.AddressOf(dst))
	if err != nil {
		return 0, err
	}
	return float64(route) / float64(direct), nil
}

// Evaluation summarizes a scheme against exact shortest-path routing.
type Evaluation struct {
	N             int
	Landmarks     int
	MeanTable     float64
	MaxTable      int
	FlatTable     int // what shortest-path-over-flat-names would need: n-1
	MeanStretch   float64
	MaxStretch    float64
	WorstCasePair [2]int
}

// Evaluate measures stretch over all ordered pairs.
func (s *Scheme) Evaluate() (Evaluation, error) {
	n := s.g.N()
	ev := Evaluation{
		N:         n,
		Landmarks: len(s.landmarks),
		MeanTable: s.MeanTableSize(),
		MaxTable:  s.MaxTableSize(),
		FlatTable: n - 1,
	}
	total := 0.0
	count := 0
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			st, err := s.Stretch(src, dst)
			if err != nil {
				return ev, err
			}
			total += st
			count++
			if st > ev.MaxStretch {
				ev.MaxStretch = st
				ev.WorstCasePair = [2]int{src, dst}
			}
		}
	}
	if count > 0 {
		ev.MeanStretch = total / float64(count)
	}
	return ev, nil
}

// String renders the evaluation.
func (ev Evaluation) String() string {
	return fmt.Sprintf("n=%d landmarks=%d table(mean=%.1f,max=%d,flat=%d) stretch(mean=%.3f,max=%.2f)",
		ev.N, ev.Landmarks, ev.MeanTable, ev.MaxTable, ev.FlatTable, ev.MeanStretch, ev.MaxStretch)
}
