package compact

import (
	"math"
	"math/rand"
	"testing"

	"locind/internal/topology"
)

func mustScheme(t *testing.T, g *topology.Graph, lms int, seed int64) *Scheme {
	t.Helper()
	s, err := New(g, lms, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(topology.New(0), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty should fail")
	}
	g := topology.New(4)
	g.AddEdge(0, 1) //nolint:errcheck
	if _, err := New(g, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("disconnected should fail")
	}
	// Landmark count clamps to n.
	s := mustScheme(t, topology.Clique(5), 99, 1)
	if len(s.Landmarks()) != 5 {
		t.Fatalf("landmarks = %d", len(s.Landmarks()))
	}
}

func TestDefaultLandmarkCount(t *testing.T) {
	g := topology.Grid(10, 10)
	s := mustScheme(t, g, 0, 2)
	want := int(math.Ceil(math.Sqrt(100)))
	if len(s.Landmarks()) != want {
		t.Fatalf("landmarks = %d, want %d", len(s.Landmarks()), want)
	}
}

// The Thorup–Zwick guarantee: with the cluster condition
// dist(r, w) < dist(w, lm(w)), every route has multiplicative stretch <= 3.
func TestStretchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		name string
		g    *topology.Graph
	}{
		{"grid", topology.Grid(8, 8)},
		{"pa", topology.PreferentialAttachment(120, 2, rng)},
		{"ring", topology.Ring(40)},
		{"chain", topology.Chain(40)},
	} {
		s := mustScheme(t, tc.g, 0, 11)
		ev, err := s.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if ev.MaxStretch > 3.0+1e-9 {
			t.Errorf("%s: max stretch %.3f exceeds the TZ bound 3 (pair %v)",
				tc.name, ev.MaxStretch, ev.WorstCasePair)
		}
		if ev.MeanStretch < 1 {
			t.Errorf("%s: mean stretch %.3f below 1", tc.name, ev.MeanStretch)
		}
		t.Logf("%s: %s", tc.name, ev)
	}
}

// Routes to landmarks and cluster members must be exactly shortest.
func TestExactRoutesWhereTablesExist(t *testing.T) {
	g := topology.Grid(7, 7)
	s := mustScheme(t, g, 0, 3)
	hops := g.AllPairsHops()
	for _, lm := range s.Landmarks() {
		for src := 0; src < g.N(); src++ {
			got, err := s.Route(src, s.AddressOf(lm))
			if err != nil {
				t.Fatal(err)
			}
			if got != hops[src][lm] {
				t.Fatalf("route to landmark %d from %d = %d, want %d", lm, src, got, hops[src][lm])
			}
		}
	}
	if d, err := s.Route(5, s.AddressOf(5)); err != nil || d != 0 {
		t.Fatalf("self route = (%d, %v), want 0", d, err)
	}
}

// Table sizes must be far below the flat-routing n-1 on graphs where
// compact routing pays off, scaling like sqrt(n) on expanders.
func TestTableCompression(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := topology.PreferentialAttachment(400, 3, rng)
	s := mustScheme(t, g, 0, 13)
	ev, err := s.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if ev.MeanTable >= float64(ev.FlatTable)/3 {
		t.Fatalf("mean table %.1f not well below flat %d", ev.MeanTable, ev.FlatTable)
	}
	t.Logf("compression: %s", ev)
}

// More landmarks = bigger tables but never worse guaranteed structure;
// fewer landmarks = smaller landmark tables but bigger clusters. The
// product of the trade-off: mean stretch decreases (weakly) as clusters
// grow with fewer landmarks being compensated... simply verify the curve is
// computable and stretch stays bounded at both extremes.
func TestLandmarkSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := topology.PreferentialAttachment(150, 2, rng)
	for _, k := range []int{2, 6, 12, 30, 75} {
		s := mustScheme(t, g, k, 5)
		ev, err := s.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		if ev.MaxStretch > 3+1e-9 {
			t.Errorf("k=%d: stretch bound broken: %v", k, ev)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := topology.PreferentialAttachment(200, 2, rng)
	s, err := New(g, 0, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Evaluate(); err != nil {
			b.Fatal(err)
		}
	}
}

// A malformed address naming a landmark the scheme never chose must surface
// as an error, not a panic — the router drops the packet and reports it.
func TestRouteUnknownLandmark(t *testing.T) {
	g := topology.Chain(20)
	s := mustScheme(t, g, 2, 1)
	isLandmark := map[int]bool{}
	for _, lm := range s.Landmarks() {
		isLandmark[lm] = true
	}
	checked := false
	for src := 0; src < g.N() && !checked; src++ {
		inCluster := map[int]bool{}
		for _, w := range s.cluster[src] {
			inCluster[w] = true
		}
		for dst := 0; dst < g.N(); dst++ {
			if dst == src || isLandmark[dst] || inCluster[dst] {
				continue
			}
			if _, err := s.Route(src, Address{Node: dst, Landmark: -1}); err == nil {
				t.Fatalf("route %d->%d with bogus landmark must error", src, dst)
			}
			checked = true
			break
		}
	}
	if !checked {
		t.Fatal("no pair exercised the landmark lookup")
	}
	if _, err := s.landmarkIndex(-1); err == nil {
		t.Fatal("unknown landmark index must error")
	}
}
