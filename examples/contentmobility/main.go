// Content mobility end to end: the §7 pipeline at reduced scale.
//
// It synthesizes the content namespace (popular domains with subdomains and
// CDN delegation, plus the unpopular long tail), simulates three weeks of
// hourly Addrs(d, t) timelines, and prints Figures 11(a)-(c) and 12 along
// with the §3.3.3 forwarding-strategy ablation.
package main

import (
	"fmt"
	"os"

	"locind/internal/cdn"
	"locind/internal/expt"
)

func main() {
	cfg := expt.QuickConfig()
	fmt.Fprintln(os.Stderr, "building world...")
	w, err := expt.BuildWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "contentmobility:", err)
		os.Exit(1)
	}

	fmt.Println(expt.RunFig11a(w).Render())
	popular := expt.RunFig11bc(w, cdn.Popular)
	fmt.Println(popular.Render())
	fmt.Println(expt.RunFig11bc(w, cdn.Unpopular).Render())
	fmt.Println(expt.RunFig12(w).Render())
	fmt.Println(expt.RunStrategyAblation(w).Render())

	fmt.Println("Conclusion (paper finding 3): popular content's address flux rarely moves")
	fmt.Println("the closest copy, so best-port forwarding sees a far lower update rate than")
	fmt.Println("controlled flooding, and the long tail of unpopular content induces almost")
	fmt.Println("no updates at all — name-based routing suits content far better than devices.")
}
