// The §5 analytic model: Table 1 at several sizes, with the closed forms,
// exact enumeration, and Monte Carlo simulation side by side. The output
// demonstrates the fundamental trade-off the paper builds on: indirection
// buys O(1/n) update cost with diameter-scale stretch; name-based routing
// buys zero stretch with topology-dependent multi-router update cost.
package main

import (
	"fmt"

	"locind/internal/expt"
)

func main() {
	for _, n := range []int{15, 63, 255} {
		fmt.Println(expt.RunTable1(n, 100, 400, int64(n)).Render())
	}
	fmt.Println("As n grows, the chain's name-based update cost converges to the paper's 1/3")
	fmt.Println("while indirection's stretch grows like n/3 — no architecture gets both for free.")
}
