// Quickstart: the paper's core methodology on a toy router, in one page.
//
// It reproduces the two worked examples from the paper's methodology
// section: the Figure 2 displacement (a device moving between prefixes that
// a router forwards to different ports) and the Figure 3 name-table
// subsumption behind the aggregateability metric, then shows the §3.3.1
// content update-cost definitions for best-port forwarding and controlled
// flooding.
package main

import (
	"fmt"

	"locind/internal/bgp"
	"locind/internal/core"
	"locind/internal/names"
	"locind/internal/netaddr"
)

func main() {
	// Router R's FIB, exactly as in Figure 2: the /24 and the /16 forward
	// to different output ports (next-hop ASes 5 and 3).
	fib := &bgp.FIB{}
	fib.Insert(netaddr.MustParsePrefix("22.33.44.0/24"),
		bgp.Route{NextHop: 5, ASPath: []int{5, 9}})
	fib.Insert(netaddr.MustParsePrefix("22.33.0.0/16"),
		bgp.Route{NextHop: 3, ASPath: []int{3, 7, 9}})

	from := netaddr.MustParseAddr("22.33.44.55")
	to := netaddr.MustParseAddr("22.33.88.55")
	fmt.Printf("device mobility %v -> %v displaces at R: %v\n",
		from, to, core.Displaced(fib, from, to))

	within := netaddr.MustParseAddr("22.33.44.99")
	fmt.Printf("device mobility %v -> %v displaces at R: %v (same longest prefix)\n\n",
		from, within, core.Displaced(fib, from, within))

	// Content mobility (§3.3.1): a name served from both prefixes loses its
	// far replica. The eligible port set changes (flooding updates) but the
	// closest copy stays put (best-port does not).
	before := []netaddr.Addr{from, to}
	after := []netaddr.Addr{from}
	fmt.Printf("content %v -> %v:\n", before, after)
	fmt.Printf("  controlled flooding updates: %v\n",
		core.ContentUpdated(fib, before, after, core.ControlledFlooding))
	fmt.Printf("  best-port updates:           %v\n\n",
		core.ContentUpdated(fib, before, after, core.BestPort))

	// Figure 3: LPM subsumption in the name space. travel.yahoo.com shares
	// yahoo.com's port, so longest-suffix matching makes its entry
	// redundant; sports.yahoo.com does not.
	complete := map[names.Name]int{
		"yahoo.com":        2,
		"travel.yahoo.com": 2,
		"sports.yahoo.com": 5,
		"cnn.com":          2,
		"mit.edu":          4,
	}
	lpm := names.BuildLPMTable(complete)
	fmt.Printf("complete name table: %d entries; LPM table: %d entries\n", len(complete), len(lpm))
	fmt.Printf("aggregateability: %.2fx\n", names.Aggregateability(complete))
	if _, kept := lpm["travel.yahoo.com"]; !kept {
		fmt.Println("travel.yahoo.com subsumed by yahoo.com, as in Figure 3")
	}
}
