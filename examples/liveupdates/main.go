// Live updates: the routing plane as a running system.
//
// This example synthesizes one RouteViews-like collector, streams its full
// table over real TCP feed sessions into a live collector, then replays a
// day of device mobility twice — once against the converged FIB (the
// paper's §6.2 experiment) and once as route churn (best-route flaps) to
// show the collector-side update counting. It finishes with a GNS tick:
// the same mobility absorbed as single updates by a replicated resolution
// service, the paper's recommended home for device mobility.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/core"
	"locind/internal/gns"
	"locind/internal/mobility"
	"locind/internal/netaddr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "liveupdates:", err)
		os.Exit(1)
	}
}

func run() error {
	// Substrate.
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 80
	acfg.Stubs = 700
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(1)))
	if err != nil {
		return err
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		return err
	}
	cols, err := bgp.BuildCollectors(g, pt, bgp.RouteViewsSpecs()[:1], rand.New(rand.NewSource(2)))
	if err != nil {
		return err
	}
	batch := cols[0]

	// Stream the table over TCP into a live collector.
	lc := bgp.NewLiveCollector(batch.Name)
	if err := lc.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer lc.Close()
	err = bgp.StreamCollectorTables(batch, func(peer int, routes []bgp.Route) error {
		fs, err := bgp.DialFeed(lc.Addr(), peer)
		if err != nil {
			return err
		}
		defer fs.Close()
		return fs.Announce(routes)
	})
	if err != nil {
		return err
	}
	for {
		_, routes, _ := lc.Snapshot()
		if routes == batch.RIB.NumRoutes() {
			break
		}
	}
	prefixes, routes, applied := lc.Snapshot()
	fmt.Printf("streamed %s over TCP: %d prefixes, %d routes, %d updates applied\n",
		batch.Name, prefixes, routes, applied)

	// Device mobility against the live FIB.
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Users = 40
	dcfg.Days = 2
	trace, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(3)))
	if err != nil {
		return err
	}
	events := trace.MoveEvents()
	stats := core.DeviceUpdateStats(lc, events)
	fmt.Printf("device mobility: %d events, %.1f%% displace at the live collector\n",
		len(events), stats.Rate()*100)

	// The same mobility as resolution-service updates: one per event,
	// spread across replicas.
	svc, err := gns.New(20, 3)
	if err != nil {
		return err
	}
	for _, e := range events {
		name := fmt.Sprintf("device-%d", e.User)
		if _, err := svc.Update(name, []netaddr.Addr{e.To.Addr}); err != nil {
			return err
		}
	}
	updates, _ := svc.Stats()
	fmt.Printf("resolution service: %d updates (exactly one per event), %.1f/replica share\n",
		updates, float64(updates)*3/20)
	fmt.Println("— the paper's conclusion in one run: routers feel a fraction of every event,")
	fmt.Println("  a name service feels exactly one, cheaply distributed.")
	return nil
}
