// Device mobility end to end: the §6 pipeline at reduced scale.
//
// It synthesizes an internetwork and RouteViews-like collectors, generates
// a NomadLog-calibrated device trace, and prints Figures 6-10 plus the
// sensitivity analysis and back-of-the-envelope loads — the full device
// half of the paper's evaluation — in under a minute.
package main

import (
	"fmt"
	"os"

	"locind/internal/expt"
)

func main() {
	cfg := expt.QuickConfig()
	fmt.Fprintln(os.Stderr, "building world...")
	w, err := expt.BuildWorld(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "devicemobility:", err)
		os.Exit(1)
	}

	fmt.Println(expt.RunFig6(w).Render())
	fmt.Println(expt.RunFig7(w).Render())
	fig8 := expt.RunFig8(w)
	fmt.Println(fig8.Render())
	sens, err := expt.RunSensitivity(w)
	if err != nil {
		fmt.Fprintln(os.Stderr, "devicemobility:", err)
		os.Exit(1)
	}
	fmt.Println(sens.Render())
	fig9 := expt.RunFig9(w)
	fmt.Println(fig9.Render())
	fmt.Println(expt.RunFig10(w).Render())
	fmt.Println(expt.RunEnvelope(w, fig8, fig9).Render())

	fmt.Println("Conclusion (paper finding 1): with pure name-based routing, some routers")
	fmt.Printf("are impacted by up to %.0f%% of device mobility events, while indirection\n", fig8.Max()*100)
	fmt.Println("and name resolution pay exactly one update per event — but indirection")
	fmt.Println("pays the triangle-routing stretch of Figure 10.")
}
