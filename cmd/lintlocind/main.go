// Command lintlocind runs this repository's custom static analyzers
// (internal/lint) over the named packages and fails on any finding.
//
// Usage:
//
//	go run ./cmd/lintlocind [flags] [packages]
//
// With no packages, ./... is analyzed. Flags:
//
//	-json          emit findings as a JSON array on stdout
//	-out FILE      also write the JSON report to FILE (for CI artifacts)
//	-checks LIST   comma-separated analyzer subset (default: all)
//	-list          print the analyzers and exit
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Suppress a
// deliberate violation with a `//lint:allow <check> <reason>` comment (see
// internal/lint/allow.go for file- and package-scope forms).
//
//lint:file-allow errflow diagnostics go to stdout/stderr; a failed print has nowhere better to be reported
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"locind/internal/lint"
)

type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// jsonReport is the full machine-readable output: surviving findings plus
// the //lint:allow suppression accounting, so CI artifacts show not only
// that the tree is clean but how many findings are being waved through.
type jsonReport struct {
	Findings          []jsonFinding  `json:"findings"`
	Suppressed        int            `json:"suppressed"`
	SuppressedByCheck map[string]int `json:"suppressed_by_check,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("lintlocind", flag.ContinueOnError)
	fs.SetOutput(stderr)
	asJSON := fs.Bool("json", false, "emit findings as JSON on stdout")
	outFile := fs.String("out", "", "also write the JSON report to this file")
	checks := fs.String("checks", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "print the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "lintlocind: unknown check %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := &lint.Loader{}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	loadFailed := false
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(stderr, "lintlocind: %s: %v\n", pkg.Path, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		return 2
	}

	rep, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	findings := make([]jsonFinding, len(rep.Diags))
	for i, d := range rep.Diags {
		findings[i] = jsonFinding{
			File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
			Check: d.Check, Message: d.Message,
		}
	}
	report := jsonReport{
		Findings:          findings,
		Suppressed:        rep.Suppressed,
		SuppressedByCheck: rep.SuppressedByCheck,
	}
	if *outFile != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*outFile, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "lintlocind: writing %s: %v\n", *outFile, err)
			return 2
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range rep.Diags {
			fmt.Fprintln(stdout, d)
		}
		if rep.Suppressed > 0 {
			fmt.Fprintf(stderr, "lintlocind: %d finding(s) suppressed by //lint:allow\n", rep.Suppressed)
		}
	}
	if len(rep.Diags) > 0 {
		fmt.Fprintf(stderr, "lintlocind: %d finding(s)\n", len(rep.Diags))
		return 1
	}
	return 0
}
