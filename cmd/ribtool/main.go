// Command ribtool inspects and serves the textual RIB dumps the repository
// produces (`locind -out` writes one per collector).
//
// Usage:
//
//	ribtool stats <dump.txt>             decision-process statistics
//	ribtool best  <dump.txt> <addr>      the selected route covering addr
//	ribtool serve <dump.txt> <peer-as>   replay the dump's routes from one
//	                                     peer into a live collector over TCP
//	                                     (a loopback demo of the feed path)
package main

import (
	"fmt"
	"os"
	"sort"

	"locind/internal/bgp"
	"locind/internal/netaddr"
)

func main() {
	if len(os.Args) < 3 {
		usage()
		os.Exit(2)
	}
	cmd, path := os.Args[1], os.Args[2]
	rib, err := loadRIB(path)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "stats":
		stats(rib)
	case "best":
		if len(os.Args) != 4 {
			usage()
			os.Exit(2)
		}
		best(rib, os.Args[3])
	case "serve":
		if len(os.Args) != 4 {
			usage()
			os.Exit(2)
		}
		var peer int
		if _, err := fmt.Sscanf(os.Args[3], "%d", &peer); err != nil {
			fatal(fmt.Errorf("bad peer AS %q", os.Args[3]))
		}
		if err := serve(rib, peer); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: ribtool stats|best|serve <dump.txt> [addr|peer-as]")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ribtool:", err)
	os.Exit(1)
}

func loadRIB(path string) (*bgp.RIB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bgp.ReadRIB(f)
}

func stats(rib *bgp.RIB) {
	fib := rib.DeriveFIB()
	fmt.Printf("prefixes:        %d\n", rib.NumPrefixes())
	fmt.Printf("routes:          %d (%.2f per prefix)\n",
		rib.NumRoutes(), float64(rib.NumRoutes())/float64(rib.NumPrefixes()))
	fmt.Printf("next-hop degree: %d\n", fib.NextHopDegree())

	// Port share distribution — the concentration behind Figure 8.
	share := map[int]int{}
	fib.Walk(func(_ netaddr.Prefix, rt bgp.Route) bool {
		share[rt.NextHop]++
		return true
	})
	type ps struct{ port, n int }
	var list []ps
	for p, n := range share {
		list = append(list, ps{p, n})
	}
	// Ties on count must break on port, or map iteration order decides
	// which ports make the top-5 print.
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].port < list[j].port
	})
	fmt.Println("top ports by prefix share:")
	for i, e := range list {
		if i >= 5 {
			break
		}
		fmt.Printf("  AS%-6d %6d prefixes (%.1f%%)\n",
			e.port, e.n, 100*float64(e.n)/float64(rib.NumPrefixes()))
	}
}

func best(rib *bgp.RIB, addrStr string) {
	a, err := netaddr.ParseAddr(addrStr)
	if err != nil {
		fatal(err)
	}
	fib := rib.DeriveFIB()
	rt, ok := fib.RouteFor(a)
	if !ok {
		fatal(fmt.Errorf("no route covers %v", a))
	}
	fmt.Println(rt)
}

func serve(rib *bgp.RIB, peer int) error {
	lc := bgp.NewLiveCollector("ribtool")
	if err := lc.Listen("127.0.0.1:0"); err != nil {
		return err
	}
	defer lc.Close()
	fmt.Printf("ribtool: live collector on %s\n", lc.Addr())

	fs, err := bgp.DialFeed(lc.Addr(), peer)
	if err != nil {
		return err
	}
	defer fs.Close()
	var batch []bgp.Route
	for _, p := range rib.Prefixes() {
		if rt, ok := rib.Best(p); ok {
			rt.NextHop = peer
			batch = append(batch, rt)
		}
		if len(batch) >= 1000 {
			if err := fs.Announce(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		if err := fs.Announce(batch); err != nil {
			return err
		}
	}
	// Poll until ingested.
	want := rib.NumPrefixes()
	for {
		prefixes, _, _ := lc.Snapshot()
		if prefixes >= want {
			break
		}
	}
	prefixes, routes, applied := lc.Snapshot()
	fmt.Printf("ribtool: streamed %d prefixes (%d routes) in %d updates\n", prefixes, routes, applied)
	return nil
}
