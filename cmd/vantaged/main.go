// Command vantaged demonstrates the PlanetLab-style content measurement of
// §7.1 end to end: it starts the collection controller on a real TCP port,
// synthesizes a content deployment with CDN delegation, launches vantage
// nodes that resolve every monitored name hourly through a partial
// locality-biased view, and verifies that the controller's merged union
// sets reconstruct the ground-truth Addrs(d, t).
//
// Usage:
//
//	vantaged [-addr host:port] [-nodes N] [-domains N] [-days N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/cdn"
	"locind/internal/obs"
	"locind/internal/reliable"
	"locind/internal/vantage"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "controller listen address")
	nodes := flag.Int("nodes", 16, "vantage points")
	domains := flag.Int("domains", 12, "popular domains to monitor")
	days := flag.Int("days", 2, "measurement days (24 resolutions per day)")
	seed := flag.Int64("seed", 1, "workload seed")
	obsAddr := flag.String("obs.addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	if err := run(*addr, *nodes, *domains, *days, *seed, *obsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "vantaged:", err)
		os.Exit(1)
	}
}

func run(addr string, nodes, domains, days int, seed int64, obsAddr string) error {
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 80
	acfg.Stubs = 700
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		return err
	}
	ccfg := cdn.DefaultConfig()
	ccfg.PopularDomains = domains
	ccfg.UnpopularDomains = domains / 2
	dep, err := cdn.Generate(g, pt, ccfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return err
	}
	hours := 24 * days
	tls := dep.Timelines(hours, rand.New(rand.NewSource(seed+2)))

	ctx := context.Background()

	// Observability: campaign-wide retry counters, per-node traces,
	// time-series sampling for /debug/dash, and the flight-recorder log on
	// an introspection port.
	var campaignMetrics *reliable.Metrics
	var tracer *obs.Tracer
	if obsAddr != "" {
		reg := obs.NewRegistry()
		campaignMetrics = reliable.NewMetrics(reg, "vantage")
		tracer = obs.NewTracer(seed, 0)
		begin := time.Now()
		tracer.SetNow(func() time.Duration { return time.Since(begin) })
		ring := obs.NewRing(0)
		smp := obs.NewSampler(reg, 0)
		smp.SetInterval(200 * time.Millisecond)
		smp.Pre(obs.RuntimeSampler(reg))
		sampStop := make(chan struct{})
		defer close(sampStop)
		go func() {
			tick := time.NewTicker(smp.Interval())
			defer tick.Stop()
			for {
				select {
				case <-sampStop:
					return
				case <-tick.C:
					smp.Tick()
				}
			}
		}()
		osrv, err := obs.Serve(ctx, obsAddr, obs.NewHandler(obs.HandlerOpts{Reg: reg, Tracer: tracer, Log: ring, Sampler: smp}))
		if err != nil {
			return err
		}
		defer osrv.Close() //nolint:errcheck // the process is exiting
		fmt.Printf("vantaged: introspection on http://%s/metrics (dashboard: /debug/dash)\n", osrv.Addr())
	}

	ctrl, err := vantage.StartController(ctx, addr)
	if err != nil {
		return err
	}
	// Sharing the tracer between campaign and controller merges both sides'
	// spans, so /debug/traces shows each node's session commit parented
	// onto the node span that dialed it in.
	ctrl.SetTracer(tracer)
	fmt.Printf("vantaged: controller on %s, %d nodes, %d names, %d hourly rounds\n",
		ctrl.Addr(), nodes, len(tls), hours)
	cp := &vantage.Campaign{
		Controller: ctrl.Addr(),
		Nodes:      nodes,
		View:       vantage.PartialView(4),
		Retries:    2,
		Backoff:    reliable.Backoff{Base: 50 * time.Millisecond, Max: time.Second},
		Metrics:    campaignMetrics,
		Tracer:     tracer,
	}
	if err := cp.Run(ctx, tls); err != nil {
		return err
	}
	if err := ctrl.Close(); err != nil {
		return err
	}

	fmt.Printf("vantaged: %d reports from %d nodes\n", ctrl.ReportCount(), ctrl.NodeCount())
	// Verify union reconstruction against the CDN ground truth.
	mismatches := 0
	for i := range tls {
		for _, h := range []int{0, hours / 2, hours - 1} {
			want := tls[i].SetAt(h)
			got := ctrl.MergedSet(tls[i].Site.Name, h)
			if len(got) != len(want) {
				mismatches++
			}
		}
	}
	fmt.Printf("vantaged: merged-vs-truth mismatches: %d (want 0)\n", mismatches)
	if errs := ctrl.Errs(); len(errs) > 0 {
		fmt.Printf("vantaged: %d protocol errors, first: %v\n", len(errs), errs[0])
	}
	// Show one name's measured mobility.
	if len(tls) > 0 {
		tl := &tls[0]
		fmt.Printf("vantaged: %s moved %d times over %d days; hour-0 set %v\n",
			tl.Site.Name, tl.EventCount(), days, ctrl.MergedSet(tl.Site.Name, 0))
	}
	if mismatches > 0 {
		return fmt.Errorf("union reconstruction failed at %d points", mismatches)
	}
	return nil
}
