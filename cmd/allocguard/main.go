// Command allocguard generates and verifies the //lint:zeroalloc guard
// tests (internal/lint/allocguard).
//
// Usage:
//
//	go run ./cmd/allocguard [-check] [packages]
//
// With no packages, ./... is scanned. By default every annotated package
// gets a regenerated allocguard_gen_test.go (and orphaned guard files are
// removed); with -check nothing is written — stale, missing, and orphaned
// guard files are reported and the exit status is 1, which is how the CI
// lint gate turns "annotation changed without regenerating" into a
// failure.
//
// Exit status: 0 clean, 1 divergence found (-check), 2 usage or scan
// failure.
//
//lint:file-allow errflow diagnostics go to stdout/stderr; a failed print has nowhere better to be reported
package main

import (
	"flag"
	"fmt"
	"os"

	"locind/internal/lint/allocguard"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("allocguard", flag.ContinueOnError)
	fs.SetOutput(stderr)
	check := fs.Bool("check", false, "verify generated guard files are current instead of writing them")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := allocguard.List(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	if *check {
		probs, err := allocguard.Check(pkgs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		for _, p := range probs {
			fmt.Fprintln(stdout, p)
		}
		if len(probs) > 0 {
			fmt.Fprintf(stderr, "allocguard: %d guard file(s) out of date\n", len(probs))
			return 1
		}
		return 0
	}

	written, removed, err := allocguard.Write(pkgs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	for _, p := range written {
		fmt.Fprintf(stdout, "allocguard: wrote %s\n", p)
	}
	for _, p := range removed {
		fmt.Fprintf(stdout, "allocguard: removed orphaned %s\n", p)
	}
	return 0
}
