// Command gnsd boots a sharded, replicated GNS cluster on loopback — the
// location-independent name service of DESIGN.md §9 — and either serves it
// until interrupted or drives the deterministic chaos soak against it.
//
// Usage:
//
//	gnsd [flags]
//
// Flags:
//
//	-shards N    consistent-hash shard count (default 3)
//	-replicas N  replication factor per shard (default 3)
//	-seed N      fault/randomness seed (default 1)
//	-soak        run the chaos soak (seed, kill a shard, heal, repair,
//	             verify convergence) instead of serving
//	-quick       soak at CI scale (20k names) instead of the full 1M
//	-obs.addr    serve /metrics and /debug/traces on this address
//	             (empty = disabled)
//
// In serve mode gnsd prints the replica address grid, one shard per line,
// and blocks until SIGINT/SIGTERM. Clients route with cluster.NewClient
// over exactly that grid. In soak mode the full experiment readout is
// printed and the exit status reports convergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"locind/internal/expt"
	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/gns/cluster"
	"locind/internal/obs"
)

func main() {
	var (
		shards   = flag.Int("shards", 3, "consistent-hash shard count")
		replicas = flag.Int("replicas", 3, "replication factor per shard")
		seed     = flag.Int64("seed", 1, "fault/randomness seed")
		soak     = flag.Bool("soak", false, "run the chaos soak instead of serving")
		quick    = flag.Bool("quick", false, "soak at CI scale (20k names) instead of 1M")
		obsAddr  = flag.String("obs.addr", "", "serve /metrics and /debug/traces on this address (empty = disabled)")
	)
	flag.Parse()
	if err := run(*shards, *replicas, *seed, *soak, *quick, *obsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "gnsd:", err)
		os.Exit(1)
	}
}

func run(shards, replicas int, seed int64, soak, quick bool, obsAddr string) error {
	if soak {
		res, err := expt.RunGNSCluster(seed, quick)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if !res.Converged {
			return fmt.Errorf("soak did not converge to the fault-free reference")
		}
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var sm *gns.ServerMetrics
	if obsAddr != "" {
		reg := obs.NewRegistry()
		sm = gns.NewServerMetrics(reg)
		srv, err := obs.Serve(ctx, obsAddr, obs.Handler(reg, nil, nil))
		if err != nil {
			return err
		}
		defer srv.Close() //nolint:errcheck // the process is exiting
		fmt.Fprintf(os.Stderr, "gnsd: introspection on http://%s/metrics\n", srv.Addr())
	}

	c, err := cluster.Start(ctx, cluster.Config{Shards: shards, Replicas: replicas}, faultnet.NewEnv(seed), sm)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Printf("gnsd: %d shards x %d replicas\n", shards, replicas)
	for s, row := range c.Addrs() {
		fmt.Printf("shard %d: %s\n", s, strings.Join(row, " "))
	}
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "gnsd: shutting down")
	return nil
}
