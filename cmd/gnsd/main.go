// Command gnsd boots a sharded, replicated GNS cluster on loopback — the
// location-independent name service of DESIGN.md §9 — and either serves it
// until interrupted or drives the deterministic chaos soak against it.
//
// Usage:
//
//	gnsd [flags]
//
// Flags:
//
//	-shards N    consistent-hash shard count (default 3)
//	-replicas N  replication factor per shard (default 3)
//	-seed N      fault/randomness seed (default 1)
//	-soak        run the chaos soak (seed, kill a shard, heal, repair,
//	             verify convergence) instead of serving
//	-quick       soak at CI scale (20k names) instead of the full 1M
//	-obs.addr    serve /metrics and /debug/traces on this address
//	             (empty = disabled)
//
// In serve mode gnsd prints the replica address grid, one shard per line,
// and blocks until SIGINT/SIGTERM. Clients route with cluster.NewClient
// over exactly that grid. In soak mode the full experiment readout is
// printed and the exit status reports convergence.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locind/internal/expt"
	"locind/internal/faultnet"
	"locind/internal/gns"
	"locind/internal/gns/cluster"
	"locind/internal/obs"
)

func main() {
	var (
		shards   = flag.Int("shards", 3, "consistent-hash shard count")
		replicas = flag.Int("replicas", 3, "replication factor per shard")
		seed     = flag.Int64("seed", 1, "fault/randomness seed")
		soak     = flag.Bool("soak", false, "run the chaos soak instead of serving")
		quick    = flag.Bool("quick", false, "soak at CI scale (20k names) instead of 1M")
		obsAddr  = flag.String("obs.addr", "", "serve /metrics and /debug/traces on this address (empty = disabled)")
	)
	flag.Parse()
	if err := run(*shards, *replicas, *seed, *soak, *quick, *obsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "gnsd:", err)
		os.Exit(1)
	}
}

func run(shards, replicas int, seed int64, soak, quick bool, obsAddr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if soak {
		// With -obs.addr the soak shares its registry and sampler with the
		// introspection endpoint, so /debug/dash?by=replica fills in live
		// while the chaos schedule runs (ticks stay schedule-driven; the
		// readout is byte-identical with the endpoint on or off).
		var o *expt.GNSClusterObs
		if obsAddr != "" {
			reg := obs.NewRegistry()
			smp := obs.NewSampler(reg, 0)
			srv, err := obs.Serve(ctx, obsAddr, obs.NewHandler(obs.HandlerOpts{Reg: reg, Sampler: smp}))
			if err != nil {
				return err
			}
			defer srv.Close() //nolint:errcheck // the process is exiting
			fmt.Fprintf(os.Stderr, "gnsd: introspection on http://%s/metrics (dashboard: /debug/dash)\n", srv.Addr())
			o = &expt.GNSClusterObs{Registry: reg, Sampler: smp}
		}
		res, err := expt.RunGNSClusterObserved(seed, quick, o)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		if !res.Converged {
			return fmt.Errorf("soak did not converge to the fault-free reference")
		}
		if !res.ChecksOK {
			return fmt.Errorf("series health checks failed")
		}
		return nil
	}

	var sm *gns.ServerMetrics
	if obsAddr != "" {
		reg := obs.NewRegistry()
		sm = gns.NewServerMetrics(reg)
		smp := obs.NewSampler(reg, 0)
		smp.SetInterval(200 * time.Millisecond)
		smp.Pre(obs.RuntimeSampler(reg))
		go func() {
			tick := time.NewTicker(smp.Interval())
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					smp.Tick()
				}
			}
		}()
		srv, err := obs.Serve(ctx, obsAddr, obs.NewHandler(obs.HandlerOpts{Reg: reg, Sampler: smp}))
		if err != nil {
			return err
		}
		defer srv.Close() //nolint:errcheck // the process is exiting
		fmt.Fprintf(os.Stderr, "gnsd: introspection on http://%s/metrics (dashboard: /debug/dash)\n", srv.Addr())
	}

	c, err := cluster.Start(ctx, cluster.Config{Shards: shards, Replicas: replicas}, faultnet.NewEnv(seed), sm)
	if err != nil {
		return err
	}
	defer c.Close()

	fmt.Printf("gnsd: %d shards x %d replicas\n", shards, replicas)
	for s, row := range c.Addrs() {
		fmt.Printf("shard %d: %s\n", s, strings.Join(row, " "))
	}
	<-ctx.Done()
	fmt.Fprintln(os.Stderr, "gnsd: shutting down")
	return nil
}
