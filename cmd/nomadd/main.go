// Command nomadd demonstrates the NomadLog measurement pipeline end to end.
//
// In its default mode it starts the IP-echo/upload backend on a real TCP
// port, synthesizes a device fleet, replays every device's mobility trace
// through goroutine-per-device agents (one tiny /ip request per
// connectivity event, batched /upload flushes whenever the device sits on
// WiFi long enough to be "plugged in"), and reports what landed in the log
// store.
//
// With -soak it instead drives the million-device event-heap engine
// (internal/nomad/engine): sharded engines stream the fleet day by day,
// upload through a faultnet chaos listener into the constant-memory
// streaming server, and the run reports flat-memory/flat-queue evidence
// plus a digest line that is byte-identical across same-seed soaks.
//
// Usage:
//
//	nomadd [-addr host:port] [-users N] [-days N] [-seed N]
//	nomadd -soak [-soak.devices N] [-soak.days N] [-soak.shards N]
//	nomadd -soak -soak.quick        # CI-sized smoke soak
//
// SIGINT/SIGTERM stop either mode gracefully: in-flight uploads drain and
// a final metrics snapshot is written before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/mobility"
	"locind/internal/nomad"
	"locind/internal/nomad/engine"
	"locind/internal/obs"
	"locind/internal/reliable"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the backend")
	users := flag.Int("users", 40, "devices in the fleet (agent mode)")
	days := flag.Int("days", 5, "days of mobility to replay (agent mode)")
	seed := flag.Int64("seed", 1, "workload seed")
	obsAddr := flag.String("obs.addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	soak := flag.Bool("soak", false, "run the event-engine chaos soak instead of the agent fleet")
	soakQuick := flag.Bool("soak.quick", false, "CI preset: a small, fast soak (implies -soak)")
	soakDevices := flag.Int("soak.devices", 1000000, "devices in the soak fleet")
	soakDays := flag.Int("soak.days", 2, "days of mobility in the soak")
	soakShards := flag.Int("soak.shards", 0, "engine shards (0 = one per core)")
	soakSeries := flag.String("soak.series", "", "write the soak's time-series dump (JSON, obsreport input) to this file")
	obsLinger := flag.Duration("obs.linger", 0, "keep the -obs.addr endpoint (and sampler ticks) alive this long after the soak, so dashboards can be scraped")
	flag.Parse()

	// Graceful shutdown: first SIGINT/SIGTERM cancels the run context —
	// engines stop at the next event boundary, in-flight uploads drain —
	// and the final metrics snapshot still prints. A second signal kills
	// the process the hard way (signal.NotifyContext restores defaults).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Both modes share the registry so the final snapshot and the
	// optional -obs.addr endpoint see the same families.
	reg := obs.NewRegistry()
	var err error
	if *soak || *soakQuick {
		cfg := engine.SoakConfig{
			Devices:  *soakDevices,
			Days:     *soakDays,
			Seed:     *seed,
			Shards:   *soakShards,
			Registry: reg,
			Out:      os.Stdout,
		}
		if *soakQuick {
			cfg.Devices = 2000
			cfg.Days = 2
		}
		err = runSoak(ctx, cfg, reg, *obsAddr, *soakSeries, *obsLinger)
	} else {
		err = runAgents(ctx, *addr, *users, *days, *seed, *obsAddr, reg)
	}
	writeFinalMetrics(reg)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled):
		fmt.Println("nomadd: interrupted; drained and shut down")
	default:
		fmt.Fprintln(os.Stderr, "nomadd:", err)
		os.Exit(1)
	}
}

// serveObs exposes /metrics, /debug/pprof, and (sampler permitting) the
// /debug/timeseries + /debug/dash pair when requested.
func serveObs(ctx context.Context, obsAddr string, reg *obs.Registry, tracer *obs.Tracer, smp *obs.Sampler) (func(), error) {
	if obsAddr == "" {
		return func() {}, nil
	}
	ring := obs.NewRing(0)
	h := obs.NewHandler(obs.HandlerOpts{Reg: reg, Tracer: tracer, Log: ring, Sampler: smp})
	osrv, err := obs.Serve(ctx, obsAddr, h)
	if err != nil {
		return nil, err
	}
	fmt.Printf("nomadd: introspection on http://%s/metrics (dashboard: /debug/dash)\n", osrv.Addr())
	return func() { osrv.Close() }, nil //lint:allow errflow the process is exiting
}

// writeFinalMetrics flushes the closing metrics snapshot to stdout — the
// last thing either mode does, on clean exits and interrupts alike.
func writeFinalMetrics(reg *obs.Registry) {
	var b strings.Builder
	reg.WritePrometheus(&b)
	fmt.Println("nomadd: final metrics snapshot:")
	for _, ln := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		fmt.Println("  " + ln)
	}
}

// runSoak drives the event-engine chaos soak. The sampler mounted on
// /debug/dash is the very one the soak drives, so a browser pointed at
// -obs.addr watches the same rings the flatness checks judge.
func runSoak(ctx context.Context, cfg engine.SoakConfig, reg *obs.Registry, obsAddr, seriesPath string, linger time.Duration) error {
	smp := obs.NewSampler(reg, 0)
	cfg.Sampler = smp
	closeObs, err := serveObs(ctx, obsAddr, reg, nil, smp)
	if err != nil {
		return err
	}
	defer closeObs()
	fmt.Printf("nomadd: soaking %d devices x %d days (seed %d)\n", cfg.Devices, cfg.Days, cfg.Seed)
	_, err = engine.RunSoak(ctx, cfg)
	// The series dump is evidence either way: a failed soak's shape is
	// exactly what obsreport is for.
	if seriesPath != "" {
		js, jerr := smp.Dump().JSON()
		if jerr == nil {
			jerr = os.WriteFile(seriesPath, js, 0o644)
		}
		if jerr != nil && err == nil {
			err = fmt.Errorf("writing -soak.series: %w", jerr)
		} else if jerr == nil {
			fmt.Printf("nomadd: time-series dump written to %s\n", seriesPath)
		}
	}
	if err == nil && linger > 0 && obsAddr != "" {
		fmt.Printf("nomadd: lingering %v for dashboard scrapes\n", linger)
		every := cfg.SampleEvery
		if every <= 0 {
			every = 200 * time.Millisecond
		}
		tick := time.NewTicker(every)
		defer tick.Stop()
		deadline := time.NewTimer(linger)
		defer deadline.Stop()
		for {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-deadline.C:
				return nil
			case <-tick.C:
				smp.Tick()
			}
		}
	}
	return err
}

// runAgents is the original agent-fleet demonstration.
func runAgents(ctx context.Context, addr string, users, days int, seed int64, obsAddr string, reg *obs.Registry) error {
	// Substrate: a small internetwork and address plan for the fleet.
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 80
	acfg.Stubs = 700
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		return err
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Users = users
	dcfg.Days = days
	trace, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return err
	}

	// Observability: fleet-wide retry counters, upload-outcome counters,
	// upload traces, time-series sampling for /debug/dash, and the
	// flight-recorder log on an introspection port.
	fleetMetrics := reliable.NewMetrics(reg, "nomad")
	agentMetrics := nomad.NewAgentMetrics(reg)
	tracer := obs.NewTracer(seed, 0)
	begin := time.Now()
	tracer.SetNow(func() time.Duration { return time.Since(begin) })
	smp := obs.NewSampler(reg, 0)
	smp.SetInterval(200 * time.Millisecond)
	smp.Pre(obs.RuntimeSampler(reg))
	sampStop := make(chan struct{})
	defer close(sampStop)
	go func() {
		tick := time.NewTicker(smp.Interval())
		defer tick.Stop()
		for {
			select {
			case <-sampStop:
				return
			case <-tick.C:
				smp.Tick()
			}
		}
	}()
	closeObs, err := serveObs(ctx, obsAddr, reg, tracer, smp)
	if err != nil {
		return err
	}
	defer closeObs()

	// The backend on a real socket. Sharing the tracer between client and
	// server sides merges their spans into one export, so /debug/traces
	// shows each upload's server-side store span under the device's batch.
	srv := nomad.NewServer()
	srv.Tracer = tracer
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv) //nolint:errcheck // server dies with the process
	base := "http://" + ln.Addr().String()
	fmt.Printf("nomadd: backend listening on %s\n", base)

	uploaded, err := nomad.RunFleetObserved(ctx, base, trace, 8, fleetMetrics, agentMetrics, tracer)
	if err != nil {
		return err
	}
	fmt.Printf("nomadd: fleet of %d devices replayed %d days\n", users, days)
	fmt.Printf("nomadd: %d records uploaded, %d devices in store\n",
		uploaded, len(srv.Store.Devices()))

	// A taste of the stored schema.
	devs := srv.Store.Devices()
	if len(devs) > 0 {
		fmt.Println("nomadd: first records of", devs[0])
		for i, e := range srv.Store.ByDevice(devs[0]) {
			if i >= 5 {
				break
			}
			fmt.Printf("  %-22s t=%7.2fh %-15s %s\n", e.DeviceID, e.Time, e.IPAddr, e.NetType)
		}
	}
	return nil
}
