// Command nomadd demonstrates the NomadLog measurement pipeline end to end:
// it starts the IP-echo/upload backend on a real TCP port, synthesizes a
// device fleet, replays every device's mobility trace through the pipeline
// (one tiny /ip request per connectivity event, batched /upload flushes
// whenever the device sits on WiFi long enough to be "plugged in"), and
// reports what landed in the log store.
//
// Usage:
//
//	nomadd [-addr host:port] [-users N] [-days N] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"time"

	"locind/internal/asgraph"
	"locind/internal/bgp"
	"locind/internal/mobility"
	"locind/internal/nomad"
	"locind/internal/obs"
	"locind/internal/reliable"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:0", "listen address for the backend")
	users := flag.Int("users", 40, "devices in the fleet")
	days := flag.Int("days", 5, "days of mobility to replay")
	seed := flag.Int64("seed", 1, "workload seed")
	obsAddr := flag.String("obs.addr", "", "serve /metrics and /debug/pprof on this address (empty = disabled)")
	flag.Parse()

	if err := run(*addr, *users, *days, *seed, *obsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "nomadd:", err)
		os.Exit(1)
	}
}

func run(addr string, users, days int, seed int64, obsAddr string) error {
	// Substrate: a small internetwork and address plan for the fleet.
	acfg := asgraph.DefaultSynthConfig()
	acfg.Tier2 = 80
	acfg.Stubs = 700
	g, err := asgraph.Synthesize(acfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return err
	}
	pt, err := bgp.NewPrefixTable(g, 1)
	if err != nil {
		return err
	}
	dcfg := mobility.DefaultDeviceConfig()
	dcfg.Users = users
	dcfg.Days = days
	trace, err := mobility.GenerateDeviceTrace(g, pt, dcfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return err
	}

	// Observability: fleet-wide retry counters, upload traces, and the
	// flight-recorder log on an introspection port.
	var fleetMetrics *reliable.Metrics
	var tracer *obs.Tracer
	if obsAddr != "" {
		reg := obs.NewRegistry()
		fleetMetrics = reliable.NewMetrics(reg, "nomad")
		tracer = obs.NewTracer(seed, 0)
		begin := time.Now()
		tracer.SetNow(func() time.Duration { return time.Since(begin) })
		ring := obs.NewRing(0)
		osrv, err := obs.Serve(context.Background(), obsAddr, obs.Handler(reg, tracer, ring))
		if err != nil {
			return err
		}
		defer osrv.Close() //nolint:errcheck // the process is exiting
		fmt.Printf("nomadd: introspection on http://%s/metrics\n", osrv.Addr())
	}

	// The backend on a real socket. Sharing the tracer between client and
	// server sides merges their spans into one export, so /debug/traces
	// shows each upload's server-side store span under the device's batch.
	srv := nomad.NewServer()
	srv.Tracer = tracer
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	go http.Serve(ln, srv) //nolint:errcheck // server dies with the process
	base := "http://" + ln.Addr().String()
	fmt.Printf("nomadd: backend listening on %s\n", base)

	uploaded, err := nomad.RunFleetObserved(context.Background(), base, trace, 8, fleetMetrics, tracer)
	if err != nil {
		return err
	}
	fmt.Printf("nomadd: fleet of %d devices replayed %d days\n", users, days)
	fmt.Printf("nomadd: %d records uploaded, %d devices in store\n",
		uploaded, len(srv.Store.Devices()))

	// A taste of the stored schema.
	devs := srv.Store.Devices()
	if len(devs) > 0 {
		fmt.Println("nomadd: first records of", devs[0])
		for i, e := range srv.Store.ByDevice(devs[0]) {
			if i >= 5 {
				break
			}
			fmt.Printf("  %-22s t=%7.2fh %-15s %s\n", e.DeviceID, e.Time, e.IPAddr, e.NetType)
		}
	}
	return nil
}
