package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}, runOpts{quick: true}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunTable1Only(t *testing.T) {
	// table1 needs no world; must complete quickly.
	if err := run([]string{"table1"}, runOpts{seed: 7, quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNetsimOnly(t *testing.T) {
	if err := run([]string{"netsim"}, runOpts{seed: 7, quick: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorldExperimentsAndExport(t *testing.T) {
	if testing.Short() {
		t.Skip("world build is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"fig8", "fig12"}, runOpts{seed: 7, quick: true, out: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8.csv")); err != nil {
		t.Fatalf("export missing: %v", err)
	}
}

// captureRun runs the experiments with stdout redirected and returns the
// rendered output.
func captureRun(t *testing.T, args []string, parallel int, obsAddr, report string) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	runErr := run(args, runOpts{seed: 7, quick: true, parallel: parallel, obsAddr: obsAddr, report: report})
	w.Close()
	out := <-done
	os.Stdout = orig
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(out)
}

// The acceptance bar of the parallel engine: output at a fixed seed must be
// byte-identical between -parallel 1 and -parallel N.
func TestRunParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("world build is slow")
	}
	args := []string{"fig8", "fig11b", "ablate"}
	seq := captureRun(t, args, 1, "", "")
	par := captureRun(t, args, 8, "127.0.0.1:0", t.TempDir())
	if seq != par {
		t.Fatalf("output diverged between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if seq == "" {
		t.Fatal("no output captured")
	}
}

// The -report flag must leave both artifacts behind, with the profiled
// phases named after the experiments that ran — and (per the byte-identical
// leg of TestRunParallelByteIdentical, which enables -report on one side
// only) profiling must never perturb results.
func TestRunReportArtifacts(t *testing.T) {
	dir := t.TempDir()
	_ = captureRun(t, []string{"table1"}, 0, "", dir)
	md, err := os.ReadFile(filepath.Join(dir, "RUNREPORT.md"))
	if err != nil {
		t.Fatalf("RUNREPORT.md missing: %v", err)
	}
	if !strings.Contains(string(md), "| table1 |") {
		t.Fatalf("RUNREPORT.md missing the table1 phase:\n%s", md)
	}
	js, err := os.ReadFile(filepath.Join(dir, "runreport.json"))
	if err != nil {
		t.Fatalf("runreport.json missing: %v", err)
	}
	var doc struct {
		Phases []struct {
			Name string `json:"name"`
		} `json:"phases"`
	}
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatalf("runreport.json invalid: %v\n%s", err, js)
	}
	if len(doc.Phases) != 1 || doc.Phases[0].Name != "table1" {
		t.Fatalf("runreport.json phases wrong: %+v", doc.Phases)
	}
}
