package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}, 0, true, ""); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunTable1Only(t *testing.T) {
	// table1 needs no world; must complete quickly.
	if err := run([]string{"table1"}, 7, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunNetsimOnly(t *testing.T) {
	if err := run([]string{"netsim"}, 7, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorldExperimentsAndExport(t *testing.T) {
	if testing.Short() {
		t.Skip("world build is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"fig8", "fig12"}, 7, true, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8.csv")); err != nil {
		t.Fatalf("export missing: %v", err)
	}
}
