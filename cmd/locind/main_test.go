package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"fig99"}, 0, true, "", 0, "", 0); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunTable1Only(t *testing.T) {
	// table1 needs no world; must complete quickly.
	if err := run([]string{"table1"}, 7, true, "", 0, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunNetsimOnly(t *testing.T) {
	if err := run([]string{"netsim"}, 7, true, "", 0, "", 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorldExperimentsAndExport(t *testing.T) {
	if testing.Short() {
		t.Skip("world build is slow")
	}
	dir := t.TempDir()
	if err := run([]string{"fig8", "fig12"}, 7, true, dir, 0, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8.csv")); err != nil {
		t.Fatalf("export missing: %v", err)
	}
}

// captureRun runs the experiments with stdout redirected and returns the
// rendered output.
func captureRun(t *testing.T, args []string, parallel int, obsAddr string) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	runErr := run(args, 7, true, "", parallel, obsAddr, 0)
	w.Close()
	out := <-done
	os.Stdout = orig
	if runErr != nil {
		t.Fatal(runErr)
	}
	return string(out)
}

// The acceptance bar of the parallel engine: output at a fixed seed must be
// byte-identical between -parallel 1 and -parallel N.
func TestRunParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("world build is slow")
	}
	args := []string{"fig8", "fig11b", "ablate"}
	seq := captureRun(t, args, 1, "")
	par := captureRun(t, args, 8, "127.0.0.1:0")
	if seq != par {
		t.Fatalf("output diverged between -parallel 1 and -parallel 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
	if seq == "" {
		t.Fatal("no output captured")
	}
}
