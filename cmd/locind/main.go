// Command locind regenerates the paper's evaluation: every table and figure
// of "Towards a Quantitative Comparison of Location-Independent Network
// Architectures" (SIGCOMM 2014), computed over the synthesized internetwork
// and measured-workload substitutes described in DESIGN.md.
//
// Usage:
//
//	locind [flags] <experiment>...
//
// Experiments: table1 fig6 fig7 fig8 fig9 fig10 fig11a fig11b fig11c fig12
// sensitivity envelope ablate netsim gns-cluster all
//
// Flags:
//
//	-seed N      master seed (default 20140817)
//	-quick       run at ~1/10 scale (fast; used by CI)
//	-parallel N  evaluation worker count (0 = GOMAXPROCS); any value
//	             produces bit-identical output
//	-obs.addr    serve /metrics, /debug/vars, /debug/pprof and
//	             /debug/traces on this address (empty = disabled;
//	             output is byte-identical either way, DESIGN.md §8)
//	-obs.linger  keep the introspection endpoint up this long after
//	             the experiments finish
//	-report DIR  write a per-phase run profile (RUNREPORT.md +
//	             runreport.json) and the run's sampled time series
//	             (timeseries.json, cmd/obsreport input) into DIR; counter
//	             deltas are deterministic for a fixed seed, timing columns
//	             and time series are not
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"locind/internal/cdn"
	"locind/internal/expt"
	"locind/internal/obs"
	"locind/internal/par"
)

func main() {
	var o runOpts
	flag.Int64Var(&o.seed, "seed", 0, "master seed (0 = config default)")
	flag.BoolVar(&o.quick, "quick", false, "run at reduced scale")
	flag.StringVar(&o.out, "out", "", "directory to export raw data (trace CSV, RIB dumps, figure series)")
	flag.IntVar(&o.parallel, "parallel", 0, "evaluation worker count (0 = GOMAXPROCS); output is identical for any value")
	flag.StringVar(&o.obsAddr, "obs.addr", "", "serve /metrics, /debug/vars, /debug/pprof and /debug/traces on this address (empty = disabled)")
	flag.DurationVar(&o.obsLinger, "obs.linger", 0, "keep the introspection endpoint up this long after the experiments finish (lets scrapers reach a batch run)")
	flag.StringVar(&o.report, "report", "", "directory to write the per-phase run profile into (RUNREPORT.md + runreport.json + timeseries.json; empty = disabled)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if err := run(args, o); err != nil {
		fmt.Fprintln(os.Stderr, "locind:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: locind [-seed N] [-quick] [-parallel N] [-obs.addr HOST:PORT [-obs.linger D]] [-report DIR] <experiment>...

experiments:
  table1       §5 analytic model: stretch vs update cost on toy topologies
  fig6         distinct network locations per user per day
  fig7         transitions across network locations per day
  fig8         device mobility update rate per collector
  fig9         dominant-location dwell fractions
  fig10        indirection stretch: latency + AS-hop lower bound
  fig11a       popular content mobility events per day
  fig11b       popular content update rate per collector
  fig11c       unpopular content update rate per collector
  fig12        FIB aggregateability of popular names
  sensitivity  §6.2.2 robustness: days, RIPE set, IMAP-proxy correlation
  envelope     back-of-the-envelope update loads
  ablate       forwarding-strategy and collector-feed ablations
  netsim       packet-level comparison of the three architectures
  gns-cluster  chaos soak of the sharded, replicated GNS cluster
               (1M names; minutes of wall clock — use -quick for CI scale;
               not part of "all")
  all          everything above except gns-cluster
`)
}

var deviceExperiments = map[string]bool{
	"fig6": true, "fig7": true, "fig8": true, "fig9": true, "fig10": true,
	"fig11a": true, "fig11b": true, "fig11c": true, "fig12": true,
	"sensitivity": true, "envelope": true, "ablate": true,
}

// runOpts carries the flag-settable knobs of one invocation.
type runOpts struct {
	seed      int64
	quick     bool
	out       string
	parallel  int
	obsAddr   string
	obsLinger time.Duration
	report    string
}

func run(args []string, o runOpts) error {
	seed, quick, out, parallel := o.seed, o.quick, o.out, o.parallel
	obsAddr, obsLinger := o.obsAddr, o.obsLinger
	want := map[string]bool{}
	for _, a := range args {
		a = strings.ToLower(a)
		if a == "all" {
			want["table1"] = true
			want["netsim"] = true
			for k := range deviceExperiments {
				want[k] = true
			}
			continue
		}
		if a != "table1" && a != "netsim" && a != "gns-cluster" && !deviceExperiments[a] {
			return fmt.Errorf("unknown experiment %q (run without arguments for the list)", a)
		}
		want[a] = true
	}

	cfg := expt.DefaultConfig()
	if quick {
		cfg = expt.QuickConfig()
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	cfg.Parallel = parallel

	// Observability is strictly additive: the same seed renders the same
	// bytes with or without the endpoint or the profiler (obs_test.go holds
	// the engine to that), so flipping -obs.addr or -report on can never
	// change a result.
	var tracer *obs.Tracer
	var ring *obs.Ring
	var profiler *obs.Profiler
	var smp *obs.Sampler
	var gnsObs *expt.GNSClusterObs
	if obsAddr != "" || o.report != "" {
		reg := obs.NewRegistry()
		cfg.Obs = expt.NewMetrics(reg)
		par.SetMetrics(par.NewMetrics(reg))
		begin := time.Now()
		// The sampler feeds /debug/dash and the -report time-series file;
		// its ticker is wall-clock but only reads atomic gauge/counter
		// values, so experiment output stays byte-identical (DESIGN.md §12).
		smp = obs.NewSampler(reg, 0)
		smp.SetInterval(200 * time.Millisecond)
		smp.Pre(obs.RuntimeSampler(reg))
		gnsObs = &expt.GNSClusterObs{Registry: reg, Sampler: smp}
		sampStop := make(chan struct{})
		defer close(sampStop)
		go func() {
			tick := time.NewTicker(smp.Interval())
			defer tick.Stop()
			for {
				select {
				case <-sampStop:
					return
				case <-tick.C:
					smp.Tick()
				}
			}
		}()
		if obsAddr != "" {
			ring = obs.NewRing(0)
			tracer = obs.NewTracer(cfg.Seed, 0)
			tracer.SetNow(func() time.Duration { return time.Since(begin) })
			srv, err := obs.Serve(context.Background(), obsAddr,
				obs.NewHandler(obs.HandlerOpts{Reg: reg, Tracer: tracer, Log: ring, Sampler: smp}))
			if err != nil {
				return err
			}
			defer srv.Close() //nolint:errcheck // the process is exiting
			defer func() {
				if obsLinger > 0 {
					fmt.Fprintf(os.Stderr, "obs: lingering %v on http://%s\n", obsLinger, srv.Addr())
					time.Sleep(obsLinger)
				}
			}()
			fmt.Fprintf(os.Stderr, "obs: introspection on http://%s/metrics (dashboard: /debug/dash)\n", srv.Addr())
		}
		if o.report != "" {
			profiler = obs.NewProfiler(reg)
			profiler.SetNow(func() time.Duration { return time.Since(begin) })
			// The report is written even when an experiment fails partway:
			// a profile of the phases that did run is exactly what you want
			// when debugging the failure.
			defer func() {
				if err := writeReport(profiler, smp, o.report); err != nil {
					fmt.Fprintln(os.Stderr, "locind: writing run report:", err)
				}
			}()
		}
	}

	if want["table1"] {
		ph := profiler.Begin("table1")
		n := 255
		if quick {
			n = 63
		}
		fmt.Println(expt.RunTable1(n, 100, 500, cfg.Seed).Render())
		ph.End()
	}
	if want["netsim"] {
		ph := profiler.Begin("netsim")
		err := func() error {
			res, err := expt.RunNetsim(cfg.Seed)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			traffic, err := expt.RunContentTraffic(cfg.Seed)
			if err != nil {
				return err
			}
			fmt.Println(traffic.Render())
			comp, err := expt.RunCompact(cfg.Seed)
			if err != nil {
				return err
			}
			fmt.Println(comp.Render())
			return nil
		}()
		ph.End()
		if err != nil {
			return err
		}
	}

	if want["gns-cluster"] {
		ph := profiler.Begin("gns-cluster")
		res, err := expt.RunGNSClusterObserved(cfg.Seed, quick, gnsObs)
		ph.End()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}

	needWorld := out != ""
	for k := range want {
		if deviceExperiments[k] {
			needWorld = true
		}
	}
	if !needWorld {
		return nil
	}
	fmt.Fprintf(os.Stderr, "building world (seed %d, %d ASes, %d users)...\n",
		cfg.Seed, cfg.AS.Tier1+cfg.AS.Tier2+cfg.AS.Stubs, cfg.Device.Users)
	buildSpan := tracer.Start("build-world")
	buildPhase := profiler.Begin("build-world")
	w, err := expt.BuildWorld(cfg)
	buildPhase.End()
	buildSpan.End()
	if err != nil {
		return err
	}

	// Run in the paper's presentation order.
	order := []string{"fig6", "fig7", "fig8", "sensitivity", "envelope",
		"fig9", "fig10", "fig11a", "fig11b", "fig11c", "fig12", "ablate"}
	var fig8 expt.Fig8Result
	var fig9 expt.Fig9Result
	haveFig8, haveFig9 := false, false
	ensure8 := func() expt.Fig8Result {
		if !haveFig8 {
			fig8 = expt.RunFig8(w)
			haveFig8 = true
		}
		return fig8
	}
	ensure9 := func() expt.Fig9Result {
		if !haveFig9 {
			fig9 = expt.RunFig9(w)
			haveFig9 = true
		}
		return fig9
	}
	for _, k := range order {
		if !want[k] {
			continue
		}
		span := tracer.Start("experiment", "name", k)
		ph := profiler.Begin(k)
		fmt.Fprintf(ring, "experiment %s start\n", k)
		err := func() error {
			switch k {
			case "fig6":
				fmt.Println(expt.RunFig6(w).Render())
			case "fig7":
				fmt.Println(expt.RunFig7(w).Render())
			case "fig8":
				fmt.Println(ensure8().Render())
			case "sensitivity":
				res, err := expt.RunSensitivity(w)
				if err != nil {
					return err
				}
				fmt.Println(res.Render())
			case "envelope":
				fmt.Println(expt.RunEnvelope(w, ensure8(), ensure9()).Render())
			case "fig9":
				fmt.Println(ensure9().Render())
			case "fig10":
				fmt.Println(expt.RunFig10(w).Render())
			case "fig11a":
				fmt.Println(expt.RunFig11a(w).Render())
			case "fig11b":
				fmt.Println(expt.RunFig11bc(w, cdn.Popular).Render())
			case "fig11c":
				fmt.Println(expt.RunFig11bc(w, cdn.Unpopular).Render())
			case "fig12":
				fmt.Println(expt.RunFig12(w).Render())
			case "ablate":
				fmt.Println(expt.RunStrategyAblation(w).Render())
				sweep, err := expt.RunSessionSweep(w, []int{2, 4, 8, 16, 24, 36})
				if err != nil {
					return err
				}
				fmt.Println(sweep.Render())
				intra, err := expt.RunIntradomain(cfg.Seed)
				if err != nil {
					return err
				}
				fmt.Println(intra.Render())
			}
			return nil
		}()
		ph.End()
		span.End()
		if err != nil {
			return err
		}
		fmt.Fprintf(ring, "experiment %s done\n", k)
	}
	if out != "" {
		fmt.Fprintf(os.Stderr, "exporting raw data to %s...\n", out)
		ph := profiler.Begin("export")
		err := expt.ExportAll(w, out)
		ph.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// writeReport renders the profiler's phase record into dir as RUNREPORT.md
// (human-readable) and runreport.json (machine-readable), plus the run's
// time-series rings as timeseries.json (cmd/obsreport input).
func writeReport(p *obs.Profiler, smp *obs.Sampler, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var md, js strings.Builder
	p.WriteReport(&md)
	p.WriteJSON(&js)
	if err := os.WriteFile(filepath.Join(dir, "RUNREPORT.md"), []byte(md.String()), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "runreport.json"), []byte(js.String()), 0o644); err != nil {
		return err
	}
	smp.Tick() // final sample so short runs aren't empty
	ts, err := smp.Dump().JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "timeseries.json"), ts, 0o644)
}
