package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, dir, name string, s snapshot) string {
	t.Helper()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func snapWith(benches []benchResult, hitRate float64) snapshot {
	return snapshot{
		GoVersion:  "go1.x",
		Benchmarks: benches,
		Memo:       memoSnapshot{HitRate: hitRate},
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", snapWith([]benchResult{
		{Name: "BenchmarkStable", NsPerOp: 1000},
		{Name: "BenchmarkSlower", NsPerOp: 1000},
		{Name: "BenchmarkFaster", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}, 0.9))
	newPath := writeSnap(t, dir, "new.json", snapWith([]benchResult{
		{Name: "BenchmarkStable", NsPerOp: 1050},  // +5%: inside the gate
		{Name: "BenchmarkSlower", NsPerOp: 1300},  // +30%: regression
		{Name: "BenchmarkFaster", NsPerOp: 700},   // improvement
		{Name: "BenchmarkFresh", NsPerOp: 123456}, // new: never a regression
	}, 0.9))

	var b strings.Builder
	n, err := compare(&b, oldPath, newPath, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("regressions = %d, want 1:\n%s", n, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"BenchmarkSlower",
		"+30.0%  <-- REGRESSION",
		"::warning title=bench regression::BenchmarkSlower ns/op +30.0%",
		"BenchmarkFresh",
		"BenchmarkGone",
		"1 regression(s) beyond the gate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "BenchmarkStable") && strings.Contains(line, "REGRESSION") {
			t.Fatalf("+5%% must not regress at a 10%% threshold:\n%s", out)
		}
	}
}

func TestCompareCleanRun(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", snapWith([]benchResult{{Name: "BenchmarkX", NsPerOp: 100}}, 0.8))
	newPath := writeSnap(t, dir, "new.json", snapWith([]benchResult{{Name: "BenchmarkX", NsPerOp: 104}}, 0.8))
	var b strings.Builder
	n, err := compare(&b, oldPath, newPath, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || !strings.Contains(b.String(), "no regressions") {
		t.Fatalf("clean compare reported %d regressions:\n%s", n, b.String())
	}
	if strings.Contains(b.String(), "::warning") {
		t.Fatalf("annotations must be opt-in:\n%s", b.String())
	}
}

func TestCompareMemoHitRateDrop(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", snapWith([]benchResult{{Name: "BenchmarkX", NsPerOp: 100}}, 0.90))
	newPath := writeSnap(t, dir, "new.json", snapWith([]benchResult{{Name: "BenchmarkX", NsPerOp: 100}}, 0.80))
	var b strings.Builder
	n, err := compare(&b, oldPath, newPath, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || !strings.Contains(b.String(), "memo hit rate: 0.900 -> 0.800  <-- REGRESSION") {
		t.Fatalf("memo drop not flagged (n=%d):\n%s", n, b.String())
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	c := diff(
		&snapshot{Benchmarks: []benchResult{{Name: "BenchmarkZ", NsPerOp: 0}}},
		&snapshot{Benchmarks: []benchResult{{Name: "BenchmarkZ", NsPerOp: 5}}},
		10,
	)
	if len(c.rows) != 1 || !math.IsInf(c.rows[0].deltaPct, 1) || !c.rows[0].regression {
		t.Fatalf("zero baseline must flag as infinite growth: %+v", c.rows)
	}
}

func TestCompareAgainstCommittedSnapshot(t *testing.T) {
	// The committed trajectory must stay loadable by the gate: compare the
	// seed snapshot against itself and expect a clean report.
	path := filepath.Join("..", "..", "BENCH_0.json")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no committed snapshot: %v", err)
	}
	var b strings.Builder
	n, err := compare(&b, path, path, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("self-compare found %d regressions:\n%s", n, b.String())
	}
}
