// Command benchjson turns `go test -bench` text piped to stdin into a
// numbered BENCH_<n>.json snapshot, so `make bench` leaves a growing
// trajectory of machine-readable performance records next to the code
// they measure. Each snapshot pairs the raw benchmark numbers with an
// obs reading of the route-memo hit rate over a quick-config evaluation
// pass: the two costs the engine trades off — wall clock per driver and
// cache effectiveness — land in one artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson
//	go run ./cmd/benchjson -compare [-threshold PCT] [-annotate] old.json new.json
//
// The output index is the first free BENCH_<n>.json in -dir (default:
// the current directory), so successive runs append to the trajectory
// rather than overwrite it.
//
// -compare diffs two snapshots from that trajectory and exits 3 when any
// benchmark's ns/op grew past -threshold percent or the memo hit rate
// dropped — the regression gate CI runs (non-blocking) against the newest
// committed snapshot. -annotate adds GitHub Actions ::warning lines.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"

	"locind/internal/cdn"
	"locind/internal/expt"
	"locind/internal/obs"
)

// benchLine matches one result row of `go test -bench` output, e.g.
//
//	BenchmarkFig8Parallel-8  12  95031415 ns/op  1234 B/op  56 allocs/op
//
// The -8 GOMAXPROCS suffix is split off, and the -benchmem columns are
// optional so plain -bench output parses too.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// contextLine matches the goos/goarch/cpu preamble go test prints.
var contextLine = regexp.MustCompile(`^(goos|goarch|pkg|cpu): (.+)$`)

type benchResult struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type memoSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

type snapshot struct {
	GoVersion  string            `json:"go_version"`
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []benchResult     `json:"benchmarks"`
	// Memo is the obs-observed route-cache behaviour of one quick-config
	// Fig8 + Fig11b pass, the same drivers the Sequential/Parallel
	// benchmark pairs measure.
	Memo memoSnapshot `json:"memo"`
}

func main() {
	dir := flag.String("dir", ".", "directory receiving BENCH_<n>.json")
	doCompare := flag.Bool("compare", false, "compare two snapshots instead of recording one: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 10, "ns/op growth (percent) beyond which -compare flags a regression")
	annotate := flag.Bool("annotate", false, "with -compare, emit GitHub Actions ::warning lines for regressions")
	flag.Parse()
	if *doCompare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold PCT] [-annotate] old.json new.json")
			os.Exit(2)
		}
		regressions, err := compare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold, *annotate)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			// A distinct exit code: CI wires this as a non-blocking
			// annotation, operators can still gate hard on it if they want.
			os.Exit(3)
		}
		return
	}
	if err := run(*dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(dir string) error {
	snap := snapshot{
		GoVersion: runtime.Version(),
		Context:   map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := contextLine.FindStringSubmatch(line); m != nil {
			snap.Context[m[1]] = m[2]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, benchResult{
			Name:        m[1],
			Procs:       int(parseInt(m[2])),
			Iterations:  parseInt(m[3]),
			NsPerOp:     parseFloat(m[4]),
			BytesPerOp:  parseInt(m[5]),
			AllocsPerOp: parseInt(m[6]),
		})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read stdin: %w", err)
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin (pipe `go test -bench` output in)")
	}

	memo, err := measureMemo()
	if err != nil {
		return err
	}
	snap.Memo = memo

	path, err := nextFree(dir)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, memo hit rate %.3f)\n", path, len(snap.Benchmarks), memo.HitRate)
	return nil
}

// measureMemo runs one quick-config evaluation pass with obs attached and
// reads the route-memo counters back. QuickConfig is fully seeded, so the
// numbers are reproducible across runs on any machine.
func measureMemo() (memoSnapshot, error) {
	reg := obs.NewRegistry()
	cfg := expt.QuickConfig()
	cfg.Obs = expt.NewMetrics(reg)
	w, err := expt.BuildWorld(cfg)
	if err != nil {
		return memoSnapshot{}, fmt.Errorf("build quick world: %w", err)
	}
	expt.RunFig8(w)
	expt.RunFig11bc(w, cdn.Popular)
	hits := cfg.Obs.Memo.Hits.Value()
	misses := cfg.Obs.Memo.Misses.Value()
	snap := memoSnapshot{
		Hits:      hits,
		Misses:    misses,
		Evictions: cfg.Obs.Memo.Evictions.Value(),
	}
	if total := hits + misses; total > 0 {
		snap.HitRate = float64(hits) / float64(total)
	}
	return snap, nil
}

// parseInt reads a (possibly empty) regexp submatch; the benchmem columns
// and the -N procs suffix are optional, and an absent group is simply 0.
func parseInt(s string) int64 {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

func parseFloat(s string) float64 {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return f
}

// nextFree returns the first unused BENCH_<n>.json path under dir, so the
// trajectory grows monotonically and never clobbers a committed record.
func nextFree(dir string) (string, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
