package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// comparison is the outcome of diffing two snapshots, separated so the
// regression gate can render and gate on it independently.
type comparison struct {
	rows        []compareRow
	memoOld     float64
	memoNew     float64
	memoDropped bool
	added       []string
	removed     []string
}

type compareRow struct {
	name       string
	oldNs      float64
	newNs      float64
	deltaPct   float64
	regression bool
}

// memoHitRateSlack is how far the memo hit rate may drop before the gate
// flags it. The rate is a workload property under a fixed seed, so any real
// drop means the memo itself changed; the slack only absorbs float
// rendering differences.
const memoHitRateSlack = 0.005

// compare diffs two BENCH_<n>.json snapshots and renders a report to w.
// A benchmark regresses when its ns/op grew by more than thresholdPct
// percent; the memo hit rate regresses when it dropped by more than
// memoHitRateSlack. With annotate set, each regression also emits a GitHub
// Actions ::warning line so CI surfaces it without failing the build.
// It returns the number of regressions.
func compare(out io.Writer, oldPath, newPath string, thresholdPct float64, annotate bool) (int, error) {
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return 0, err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return 0, err
	}
	c := diff(oldSnap, newSnap, thresholdPct)

	// Render into a builder (whose writes cannot fail) and flush once, so
	// a broken pipe surfaces as one checked error instead of twelve.
	w := &strings.Builder{}
	fmt.Fprintf(w, "comparing %s -> %s (threshold %+.1f%% ns/op)\n\n", oldPath, newPath, thresholdPct)
	fmt.Fprintf(w, "%-40s %15s %15s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, r := range c.rows {
		mark := ""
		if r.regression {
			mark = "  <-- REGRESSION"
			regressions++
			if annotate {
				fmt.Fprintf(w, "::warning title=bench regression::%s ns/op %+.1f%% (%.0f -> %.0f)\n",
					r.name, r.deltaPct, r.oldNs, r.newNs)
			}
		}
		fmt.Fprintf(w, "%-40s %15.0f %15.0f %+8.1f%%%s\n", r.name, r.oldNs, r.newNs, r.deltaPct, mark)
	}
	for _, n := range c.added {
		fmt.Fprintf(w, "%-40s %15s %15s %9s\n", n, "-", "new", "")
	}
	for _, n := range c.removed {
		fmt.Fprintf(w, "%-40s %15s %15s %9s\n", n, "gone", "-", "")
	}
	fmt.Fprintf(w, "\nmemo hit rate: %.3f -> %.3f", c.memoOld, c.memoNew)
	if c.memoDropped {
		regressions++
		fmt.Fprint(w, "  <-- REGRESSION")
		if annotate {
			fmt.Fprintf(w, "\n::warning title=memo regression::memo hit rate dropped %.3f -> %.3f", c.memoOld, c.memoNew)
		}
	}
	fmt.Fprintln(w)
	if regressions > 0 {
		fmt.Fprintf(w, "%d regression(s) beyond the gate\n", regressions)
	} else {
		fmt.Fprintln(w, "no regressions")
	}
	if _, err := io.WriteString(out, w.String()); err != nil {
		return regressions, err
	}
	return regressions, nil
}

// diff computes the per-benchmark deltas, keyed by benchmark name (names
// are unique within one run of the repo's bench set).
func diff(oldSnap, newSnap *snapshot, thresholdPct float64) comparison {
	oldBy := map[string]benchResult{}
	for _, b := range oldSnap.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]benchResult{}
	for _, b := range newSnap.Benchmarks {
		newBy[b.Name] = b
	}
	c := comparison{memoOld: oldSnap.Memo.HitRate, memoNew: newSnap.Memo.HitRate}
	c.memoDropped = c.memoOld-c.memoNew > memoHitRateSlack
	for name, ob := range oldBy {
		nb, ok := newBy[name]
		if !ok {
			c.removed = append(c.removed, name)
			continue
		}
		row := compareRow{name: name, oldNs: ob.NsPerOp, newNs: nb.NsPerOp}
		if ob.NsPerOp > 0 {
			row.deltaPct = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		} else if nb.NsPerOp > 0 {
			row.deltaPct = math.Inf(1)
		}
		row.regression = row.deltaPct > thresholdPct
		c.rows = append(c.rows, row)
	}
	for name := range newBy {
		if _, ok := oldBy[name]; !ok {
			c.added = append(c.added, name)
		}
	}
	sort.Slice(c.rows, func(i, j int) bool { return c.rows[i].name < c.rows[j].name })
	sort.Strings(c.added)
	sort.Strings(c.removed)
	return c
}

func loadSnapshot(path string) (*snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &s, nil
}
