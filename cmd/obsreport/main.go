// Command obsreport turns a /debug/timeseries dump into a compact markdown
// digest: one row per series with a unicode sparkline and last/min/max, plus
// the sampler's check verdicts up top. It is the offline companion of the
// /debug/dash page — the same rings, rendered for a CI artifact or a PR
// comment instead of a browser.
//
// Usage:
//
//	obsreport [-o FILE] <dump.json | - | http://host:port/debug/timeseries>
//
// The input may be a file written by nomadd -soak.series or locind -report
// (timeseries.json), "-" for stdin, or an http(s) URL scraped live. The exit
// status encodes the health verdict: 0 when every series check passed (or no
// checks were bound), 1 when any check failed, 2 on usage or I/O errors —
// so a CI step can both upload the digest and gate on it.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"locind/internal/obs"
)

func main() {
	out := flag.String("o", "", "write the markdown digest to this file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: obsreport [-o FILE] <dump.json | - | URL>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	code, err := run(flag.Arg(0), *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsreport:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run reads, renders, and writes; the int is the process exit code for the
// health verdict (0 ok, 1 failing checks).
func run(src, out string) (int, error) {
	raw, err := read(src)
	if err != nil {
		return 0, err
	}
	d, err := obs.ParseDump(raw)
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	d.WriteMarkdown(&b)
	if out == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(out, []byte(b.String()), 0o644); err != nil {
		return 0, err
	}
	for _, c := range d.Checks {
		if !c.OK {
			fmt.Fprintf(os.Stderr, "obsreport: check %s (%s on %s) FAILED: %s\n", c.Name, c.Kind, c.Series, c.Detail)
			return 1, nil
		}
	}
	return 0, nil
}

// read fetches the dump bytes from a file, stdin ("-"), or an http(s) URL.
func read(src string) ([]byte, error) {
	switch {
	case src == "-":
		return io.ReadAll(os.Stdin)
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close() //nolint:errcheck // read-only GET
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s", src, resp.Status)
		}
		return io.ReadAll(resp.Body)
	default:
		return os.ReadFile(src)
	}
}
