// Package locind_test holds the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation, so
//
//	go test -bench=. -benchmem
//
// regenerates every result and reports its cost. The benchmarks share one
// lazily built QuickConfig world (building the world itself is benchmarked
// separately); `cmd/locind` runs the same drivers at full paper scale.
package locind_test

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"locind/internal/cdn"
	"locind/internal/expt"
	"locind/internal/mobility"
	"locind/internal/nomad/engine"
	"locind/internal/obs"
)

var (
	benchOnce  sync.Once
	benchWorld *expt.World
	benchErr   error
)

func world(b *testing.B) *expt.World {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld, benchErr = expt.BuildWorld(expt.QuickConfig())
		if benchErr == nil {
			benchWorld.Timelines() // pre-generate so content benches measure analysis only
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorld
}

// BenchmarkWorldBuild measures synthesizing the entire substrate: AS graph,
// address plan, 25 collectors, device trace, and content deployment.
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w, err := expt.BuildWorld(expt.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		_ = w
	}
}

// BenchmarkTable1 regenerates the §5 analytic table (closed forms, exact
// enumeration, and simulation).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.RunTable1(63, 50, 200, 1)
	}
}

// BenchmarkFig6 regenerates the distinct-locations-per-day CDFs.
func BenchmarkFig6(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig6(w)
	}
}

// BenchmarkFig7 regenerates the transitions-per-day CDFs.
func BenchmarkFig7(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig7(w)
	}
}

// BenchmarkFig8 regenerates the per-collector device update rates.
func BenchmarkFig8(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig8(w)
	}
}

// BenchmarkSensitivity regenerates the §6.2.2 robustness checks, including
// the 7137-user-style IMAP proxy workload.
func BenchmarkSensitivity(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunSensitivity(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9 regenerates the dominant-location dwell CDFs.
func BenchmarkFig9(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig9(w)
	}
}

// BenchmarkFig10 regenerates the indirection-stretch figure (iPlane build +
// latency queries + AS-hop lower bound).
func BenchmarkFig10(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig10(w)
	}
}

// BenchmarkFig11a regenerates the popular-content mobility-extent CDF.
func BenchmarkFig11a(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig11a(w)
	}
}

// BenchmarkFig11b regenerates the popular-content per-collector update
// rates under both forwarding strategies.
func BenchmarkFig11b(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig11bc(w, cdn.Popular)
	}
}

// BenchmarkFig11c regenerates the unpopular-content update rates.
func BenchmarkFig11c(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig11bc(w, cdn.Unpopular)
	}
}

// BenchmarkFig12 regenerates the FIB-aggregateability figure.
func BenchmarkFig12(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunFig12(w)
	}
}

// BenchmarkEnvelope regenerates the back-of-the-envelope block.
func BenchmarkEnvelope(b *testing.B) {
	w := world(b)
	f8 := expt.RunFig8(w)
	f9 := expt.RunFig9(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunEnvelope(w, f8, f9)
	}
}

// BenchmarkStrategyAblation regenerates the §3.3.3 strategy comparison.
func BenchmarkStrategyAblation(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expt.RunStrategyAblation(w)
	}
}

// BenchmarkNetsimComparison regenerates the packet-level architecture
// comparison.
func BenchmarkNetsimComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunNetsim(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkContentTraffic regenerates the §3.3.3 forwarding-traffic
// trade-off.
func BenchmarkContentTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunContentTraffic(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompactRouting regenerates the §2.1 compact-routing sweep.
func BenchmarkCompactRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunCompact(int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionSweep regenerates the collector feed-count ablation.
func BenchmarkSessionSweep(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expt.RunSessionSweep(w, []int{4, 16, 36}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sequential-vs-parallel pairs. Each driver's result is bit-identical at
// every worker count (asserted by the determinism tests), so the pairs
// measure exactly the engine's speedup: compare Sequential (1 worker)
// against Parallel (GOMAXPROCS workers).

// benchAt pins the shared world's parallelism knob for one benchmark.
func benchAt(b *testing.B, parallel int, fn func(w *expt.World)) {
	w := world(b)
	old := w.Cfg.Parallel
	w.Cfg.Parallel = parallel
	b.Cleanup(func() { w.Cfg.Parallel = old })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(w)
	}
}

func BenchmarkFig8Sequential(b *testing.B) {
	benchAt(b, 1, func(w *expt.World) { expt.RunFig8(w) })
}

func BenchmarkFig8Parallel(b *testing.B) {
	benchAt(b, 0, func(w *expt.World) { expt.RunFig8(w) })
}

func BenchmarkFig11bSequential(b *testing.B) {
	benchAt(b, 1, func(w *expt.World) { expt.RunFig11bc(w, cdn.Popular) })
}

func BenchmarkFig11bParallel(b *testing.B) {
	benchAt(b, 0, func(w *expt.World) { expt.RunFig11bc(w, cdn.Popular) })
}

func BenchmarkFig11cSequential(b *testing.B) {
	benchAt(b, 1, func(w *expt.World) { expt.RunFig11bc(w, cdn.Unpopular) })
}

func BenchmarkFig11cParallel(b *testing.B) {
	benchAt(b, 0, func(w *expt.World) { expt.RunFig11bc(w, cdn.Unpopular) })
}

func BenchmarkStrategyAblationSequential(b *testing.B) {
	benchAt(b, 1, func(w *expt.World) { expt.RunStrategyAblation(w) })
}

func BenchmarkStrategyAblationParallel(b *testing.B) {
	benchAt(b, 0, func(w *expt.World) { expt.RunStrategyAblation(w) })
}

func BenchmarkSensitivitySequential(b *testing.B) {
	benchAt(b, 1, func(w *expt.World) {
		if _, err := expt.RunSensitivity(w); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkSensitivityParallel(b *testing.B) {
	benchAt(b, 0, func(w *expt.World) {
		if _, err := expt.RunSensitivity(w); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkTimelinesSequential(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Deployment.TimelinesParallel(24*7, rand.New(rand.NewSource(int64(i))), 1)
	}
}

func BenchmarkTimelinesParallel(b *testing.B) {
	w := world(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Deployment.TimelinesParallel(24*7, rand.New(rand.NewSource(int64(i))), 0)
	}
}

// BenchmarkNomadEngine measures the event-heap agent engine's raw
// simulation throughput: 2000 streamed devices over 2 days with a nil
// uploader, so the number is pure event-step cost (heap churn, day
// refills, sealing and backpressure eviction) with no network in the
// loop. Reset replays the same fleet in place, so iterations after the
// first run the zero-alloc steady-state path the allocguard tests pin.
func BenchmarkNomadEngine(b *testing.B) {
	w := world(b)
	fleet, err := mobility.NewFleetGen(w.Graph, w.Prefixes, w.Cfg.Device, 9)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := engine.New(engine.Config{
		Fleet:            fleet,
		Devices:          2000,
		Days:             2,
		MaxPending:       64,
		MaxQueuedBatches: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Reset()
		if err := eng.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(eng.Steps()), "events/op")
}

// BenchmarkSamplerTick measures one time-series sampling tick over a
// registry shaped like the nomad soak's (a few dozen counters and gauges
// plus one histogram, which expands to five derived series): the cost the
// dashboard adds to every 200ms of a soak. After the first tick builds the
// rings, the per-tick path is zero-alloc (the allocguard tests pin it).
func BenchmarkSamplerTick(b *testing.B) {
	reg := obs.NewRegistry()
	for i := 0; i < 16; i++ {
		c := reg.Counter("bench_ops_total", "ops", "shard", strconv.Itoa(i))
		g := reg.Gauge("bench_queue_entries", "queue depth", "shard", strconv.Itoa(i))
		c.Add(int64(i))
		g.Set(int64(i))
	}
	h := reg.Histogram("bench_latency_seconds", "latency", nil)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%97) / 250)
	}
	smp := obs.NewSampler(reg, 0)
	smp.Tick() // cold path: build sources and rings
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		smp.Tick()
	}
}
