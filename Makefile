# Developer entry points. Everything here is plain go tooling — the module
# is stdlib-only and every target works offline.

GO ?= go

# BENCH_SET picks which benchmarks `make bench` records. The default is the
# sequential-vs-parallel driver pairs plus the world build — the numbers the
# evaluation engine's speedup claims rest on — and the nomad event engine,
# whose events/op throughput the million-device soak claims rest on.
# Override for a full sweep:
#
#   make bench BENCH_SET='.'
BENCH_SET ?= WorldBuild|Fig8(Sequential|Parallel)|Fig11[bc](Sequential|Parallel)|StrategyAblation(Sequential|Parallel)|Timelines(Sequential|Parallel)|NomadEngine|SamplerTick

.PHONY: all build test race lint allocguard bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/lintlocind ./...
	$(GO) run ./cmd/allocguard -check ./...

# allocguard regenerates the //lint:zeroalloc guard tests
# (allocguard_gen_test.go in each annotated package) after annotations
# change; `make lint` verifies they are current.
allocguard:
	$(GO) run ./cmd/allocguard ./...

# bench runs the selected benchmarks once and records the result as the
# next free BENCH_<n>.json in the repo root, together with an obs snapshot
# of the route-memo hit rate (see cmd/benchjson). The trajectory of
# BENCH_*.json files is append-only: successive runs add new indices.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_SET)' -benchmem -benchtime 1x -count 1 . | $(GO) run ./cmd/benchjson

clean:
	$(GO) clean ./...
