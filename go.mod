module locind

go 1.22
